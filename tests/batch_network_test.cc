// Differential tests for the batched multi-instance engine: a BatchNetwork
// running B instances over one shared topology must be bit-identical, per
// instance, to B sequential Network::Run calls — same outputs, same
// per-instance round counts, same message counts, same per-round RoundStats
// — including instances that halt at very different times and drop out of
// the batch independently.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using local::Algorithm;
using local::BatchNetwork;
using local::Message;
using local::Network;
using local::NetworkOptions;
using local::NodeContext;
using local::RoundStats;

// Message-dependent transcript with a per-instance salt: every round each
// node folds its inbox into a running digest, re-broadcasts it, and
// double-sends on port 0 (exercising last-write-wins accounting); the halt
// round depends on (id, salt), so differently-salted instances produce
// genuinely different transcripts and halting schedules.
class SaltedDigest : public Algorithm {
 public:
  SaltedDigest(int n, uint64_t salt) : salt_(salt), digest_(n, 0) {}

  void OnRound(NodeContext& ctx) override {
    const int v = ctx.node();
    uint64_t d = digest_[v] * 1000003ULL + 17 + salt_;
    d += static_cast<uint64_t>(ctx.id());
    for (int p = 0; p < ctx.degree(); ++p) {
      const Message& m = ctx.Recv(p);
      if (m.present()) {
        d = d * 31 + static_cast<uint64_t>(m.word0) +
            3 * static_cast<uint64_t>(m.word1) + m.size;
      }
    }
    digest_[v] = d;
    const int halt_round =
        static_cast<int>((static_cast<uint64_t>(ctx.id()) + salt_) % 11) + 1;
    if (ctx.round() >= halt_round) {
      ctx.Halt();
      return;
    }
    ctx.Broadcast(Message::Of(static_cast<int64_t>(d & 0x7fffffff), v));
    if (ctx.degree() > 0) {
      ctx.Send(0, Message::Of(static_cast<int64_t>(d % 97)));
    }
  }

  const uint64_t salt_;
  std::vector<uint64_t> digest_;
};

struct SoloOutcome {
  int rounds = 0;
  int64_t messages = 0;
  std::vector<RoundStats> stats;
};

// Runs B salted-digest instances batched and solo and asserts bit-identity.
void ExpectBatchMatchesSequential(const Graph& g,
                                  const std::vector<int64_t>& ids, int batch,
                                  int max_rounds) {
  const int n = g.NumNodes();
  std::vector<std::unique_ptr<SaltedDigest>> batch_algs, solo_algs;
  std::vector<Algorithm*> ptrs;
  for (int b = 0; b < batch; ++b) {
    batch_algs.push_back(std::make_unique<SaltedDigest>(n, 1000003u * b));
    solo_algs.push_back(std::make_unique<SaltedDigest>(n, 1000003u * b));
    ptrs.push_back(batch_algs.back().get());
  }

  BatchNetwork bnet(g, ids, batch);
  std::vector<int> rounds = bnet.Run(ptrs, max_rounds);

  Network solo(g, ids);
  for (int b = 0; b < batch; ++b) {
    SoloOutcome want{solo.Run(*solo_algs[b], max_rounds),
                     solo.messages_delivered(), solo.round_stats()};
    EXPECT_EQ(rounds[b], want.rounds) << "instance " << b;
    EXPECT_EQ(bnet.messages_delivered(b), want.messages) << "instance " << b;
    EXPECT_EQ(bnet.round_stats(b), want.stats) << "instance " << b;
    EXPECT_EQ(batch_algs[b]->digest_, solo_algs[b]->digest_)
        << "instance " << b;
  }
}

TEST(BatchNetworkTest, DigestBatchOf2MatchesSequential) {
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 2 + trial * 29;
    Graph g = UniformRandomTree(n, 1100 + trial);
    auto ids = DefaultIds(n, 1200 + trial);
    ExpectBatchMatchesSequential(g, ids, 2, 64);
  }
}

TEST(BatchNetworkTest, DigestBatchOf8MatchesSequential) {
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 32 + trial * 47;
    Graph g = trial % 2 == 0 ? UniformRandomTree(n, 1300 + trial)
                             : BoundedDegreeRandomTree(n, 3 + trial, 1300 + trial);
    auto ids = DefaultIds(n, 1400 + trial);
    ExpectBatchMatchesSequential(g, ids, 8, 64);
  }
}

// The production workload (acceptance criterion): a batched k-sweep of the
// real rake-compress process, B in {2, 8}, bit-identical per instance to
// sequential RunRakeCompress — outputs, per-instance round counts, message
// counts, and per-round trajectories.
TEST(BatchNetworkTest, RakeCompressBatchBitIdentical) {
  const std::vector<std::vector<int>> sweeps = {
      {2, 16},                        // B = 2
      {2, 3, 4, 6, 8, 12, 16, 24}};   // B = 8
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 24 + trial * 131;
    Graph tree = trial % 2 == 0 ? UniformRandomTree(n, 1500 + trial)
                                : BoundedDegreeRandomTree(n, 4, 1500 + trial);
    auto ids = DefaultIds(n, 1600 + trial);
    for (const auto& ks : sweeps) {
      BatchNetwork bnet(tree, ids, static_cast<int>(ks.size()));
      std::vector<RakeCompressResult> batched = RunRakeCompressBatch(bnet, ks);
      for (size_t b = 0; b < ks.size(); ++b) {
        RakeCompressResult solo = RunRakeCompress(tree, ids, ks[b]);
        EXPECT_EQ(batched[b].engine_rounds, solo.engine_rounds);
        EXPECT_EQ(batched[b].messages, solo.messages);
        EXPECT_EQ(batched[b].num_iterations, solo.num_iterations);
        EXPECT_EQ(batched[b].iteration, solo.iteration);
        EXPECT_EQ(batched[b].compressed, solo.compressed);
        EXPECT_EQ(batched[b].round_stats, solo.round_stats);
      }
    }
  }
}

// An instance that finishes drops out of the batch while the others keep
// running: its round_stats freeze at its own round count and the remaining
// instances' counters are unaffected.
TEST(BatchNetworkTest, FinishedInstanceDropsOutIndependently) {
  class HaltAtRound : public Algorithm {
   public:
    explicit HaltAtRound(int round) : round_(round) {}
    void OnRound(NodeContext& ctx) override {
      ctx.Broadcast(Message::Of(ctx.round()));
      if (ctx.round() >= round_) ctx.Halt();
    }
    const int round_;
  };
  const int n = 40;
  Graph g = UniformRandomTree(n, 77);
  auto ids = DefaultIds(n, 78);
  HaltAtRound fast(1), mid(4), slow(9);
  std::vector<Algorithm*> algs = {&fast, &mid, &slow};
  BatchNetwork bnet(g, ids, 3);
  std::vector<int> rounds = bnet.Run(algs, 64);
  EXPECT_EQ(rounds, (std::vector<int>{2, 5, 10}));
  for (int b = 0; b < 3; ++b) {
    ASSERT_EQ(bnet.round_stats(b).size(), static_cast<size_t>(rounds[b]));
    for (const RoundStats& rs : bnet.round_stats(b)) {
      EXPECT_EQ(rs.active_nodes, n);  // everyone runs until the common halt
    }
  }
  // Messages: every node broadcasts every round it runs.
  int64_t per_round = 2 * static_cast<int64_t>(g.NumEdges());
  EXPECT_EQ(bnet.messages_delivered(0), 2 * per_round);
  EXPECT_EQ(bnet.messages_delivered(2), 10 * per_round);
}

// One BatchNetwork is reusable across Runs (epoch invalidation, no stale
// messages), matching fresh-engine results, and survives an epoch re-arm.
TEST(BatchNetworkTest, BatchReuseAndEpochRearm) {
  const int n = 120;
  Graph g = UniformRandomTree(n, 88);
  auto ids = DefaultIds(n, 89);
  BatchNetwork reused(g, ids, 4);

  auto run_once = [&](BatchNetwork& net) {
    std::vector<std::unique_ptr<SaltedDigest>> algs;
    std::vector<Algorithm*> ptrs;
    for (int b = 0; b < 4; ++b) {
      algs.push_back(std::make_unique<SaltedDigest>(n, 7u * b));
      ptrs.push_back(algs.back().get());
    }
    std::vector<int> rounds = net.Run(ptrs, 64);
    std::vector<std::vector<uint64_t>> digests;
    for (auto& a : algs) digests.push_back(a->digest_);
    return std::make_pair(rounds, digests);
  };

  auto first = run_once(reused);
  auto second = run_once(reused);
  EXPECT_EQ(first, second);

  // Near-wrap epoch: the guard must re-arm once and stay bit-identical.
  reused.set_epoch_for_testing(INT32_MAX - 5);
  auto rearmed = run_once(reused);
  EXPECT_EQ(first, rearmed);
  EXPECT_LT(reused.epoch_for_testing(), 100);

  BatchNetwork fresh(g, ids, 4);
  EXPECT_EQ(run_once(fresh), first);
}

// NodeContext::instance() lets one shared Algorithm object keep per-instance
// state; under solo engines it is always 0.
TEST(BatchNetworkTest, InstanceIndexExposed) {
  class RecordInstance : public Algorithm {
   public:
    void OnRound(NodeContext& ctx) override {
      seen_.push_back(ctx.instance());
      ctx.Halt();
    }
    std::vector<int> seen_;
  };
  Graph g = Path(2);
  auto ids = DefaultIds(2, 9);
  RecordInstance shared;
  std::vector<Algorithm*> algs = {&shared, &shared, &shared};
  BatchNetwork bnet(g, ids, 3);
  bnet.Run(algs, 4);
  // The cache-blocked round pass sweeps a node chunk per instance slice:
  // within a chunk, instance 0 visits all nodes, then instance 1, etc.
  EXPECT_EQ(shared.seen_, (std::vector<int>{0, 0, 1, 1, 2, 2}));

  RecordInstance solo_alg;
  Network solo(g, ids);
  solo.Run(solo_alg, 4);
  EXPECT_EQ(solo_alg.seen_, (std::vector<int>{0, 0}));
}

TEST(BatchNetworkTest, EmptyAndTinyGraphs) {
  Graph empty = Graph::FromEdges(0, {});
  BatchNetwork net0(empty, {}, 2);
  SaltedDigest a(0, 0), b(0, 1);
  std::vector<Algorithm*> algs = {&a, &b};
  EXPECT_EQ(net0.Run(algs, 4), (std::vector<int>{0, 0}));
  EXPECT_EQ(net0.messages_delivered(0), 0);
  EXPECT_EQ(net0.messages_delivered(1), 0);

  Graph one = Graph::FromEdges(1, {});
  auto ids = DefaultIds(1, 1);
  ExpectBatchMatchesSequential(one, ids, 2, 64);

  EXPECT_THROW(BatchNetwork(one, ids, 0), std::invalid_argument);
  BatchNetwork net1(one, ids, 1);
  SaltedDigest c(1, 0), c_solo(1, 0);
  std::vector<Algorithm*> just_c = {&c};
  EXPECT_THROW(net1.Run(algs, 4), std::invalid_argument);
  Network solo(one, ids);
  EXPECT_EQ(net1.Run(just_c, 64)[0], solo.Run(c_solo, 64));
  EXPECT_EQ(c.digest_, c_solo.digest_);
}

// ---------------------------------------------------------------------------
// NetworkOptions::relabel on the batch engine: BFS channel clusters and
// rank-indexed state planes must be invisible in every transcript surface —
// per-instance round counts, message counts, RoundStats, digest chains,
// algorithm outputs, StateAt read-back, and checkpoints.
// ---------------------------------------------------------------------------

// Relabeled batch vs plain batch, per instance, on message-dependent
// transcripts: every observable surface identical; serial and sharded.
void ExpectRelabelBatchBitIdentical(const Graph& g,
                                    const std::vector<int64_t>& ids, int batch,
                                    int threads) {
  const int n = g.NumNodes();
  NetworkOptions plain, relabel;
  relabel.relabel = true;

  auto run = [&](const NetworkOptions& opt) {
    std::vector<std::unique_ptr<SaltedDigest>> algs;
    std::vector<Algorithm*> ptrs;
    for (int b = 0; b < batch; ++b) {
      algs.push_back(std::make_unique<SaltedDigest>(n, 1000003u * b));
      ptrs.push_back(algs.back().get());
    }
    BatchNetwork net(g, ids, batch, threads, opt);
    std::vector<int> rounds = net.Run(ptrs, 64);
    struct Got {
      std::vector<int> rounds;
      std::vector<int64_t> messages;
      std::vector<std::vector<RoundStats>> stats;
      std::vector<std::vector<uint64_t>> chains;
      std::vector<std::vector<uint64_t>> outputs;
    } got;
    got.rounds = rounds;
    for (int b = 0; b < batch; ++b) {
      got.messages.push_back(net.messages_delivered(b));
      got.stats.push_back(net.round_stats(b));
      got.chains.push_back(net.round_digests(b));
      got.outputs.push_back(algs[b]->digest_);
    }
    return std::make_tuple(got.rounds, got.messages, got.stats, got.chains,
                           got.outputs);
  };

  EXPECT_EQ(run(relabel), run(plain))
      << "batch=" << batch << " threads=" << threads;
}

TEST(BatchNetworkRelabel, SaltedDigestBitIdentical) {
  for (int threads : {1, 3}) {
    {
      const int n = 173;
      Graph g = UniformRandomTree(n, 2000);
      ExpectRelabelBatchBitIdentical(g, DefaultIds(n, 2001), 2, threads);
      ExpectRelabelBatchBitIdentical(g, DefaultIds(n, 2001), 8, threads);
    }
    {
      // Multi-component forest: BFS restarts cross component seams.
      Graph g = ForestUnion(240, 1, 2002);
      ExpectRelabelBatchBitIdentical(g, DefaultIds(g.NumNodes(), 2003), 8,
                                     threads);
    }
    {
      Graph g = Star(50);
      ExpectRelabelBatchBitIdentical(g, DefaultIds(50, 2004), 4, threads);
    }
  }
}

// The relabel win needs rank-indexed state planes; RunRakeCompressBatch
// reads results back through StateAt, so this pins the external->rank
// translation end to end against solo plain runs.
TEST(BatchNetworkRelabel, RakeCompressStateReadBackBitIdentical) {
  const std::vector<int> ks = {2, 3, 4, 6, 8, 12, 16, 24};
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 90 + trial * 113;
    Graph tree = trial == 1 ? BoundedDegreeRandomTree(n, 4, 2100 + trial)
                            : UniformRandomTree(n, 2100 + trial);
    auto ids = DefaultIds(n, 2200 + trial);
    NetworkOptions relabel;
    relabel.relabel = true;
    for (int threads : {1, 3}) {
      BatchNetwork bnet(tree, ids, static_cast<int>(ks.size()), threads,
                        relabel);
      std::vector<RakeCompressResult> batched = RunRakeCompressBatch(bnet, ks);
      for (size_t b = 0; b < ks.size(); ++b) {
        RakeCompressResult solo = RunRakeCompress(tree, ids, ks[b]);
        EXPECT_EQ(batched[b].engine_rounds, solo.engine_rounds);
        EXPECT_EQ(batched[b].messages, solo.messages);
        EXPECT_EQ(batched[b].iteration, solo.iteration);
        EXPECT_EQ(batched[b].compressed, solo.compressed);
        EXPECT_EQ(batched[b].round_stats, solo.round_stats);
      }
    }
  }
}

// Staged broadcast sweep opting into wake scheduling (per-rank action
// rounds, sleeps, message wakes) — the scheduled sparse path does its own
// state addressing, so relabel x scheduling is pinned separately. Same
// algorithm as the wake-scheduler suite's StagedSweep.
class StagedSweepAlg : public Algorithm {
 public:
  StagedSweepAlg(int num_rounds, int mult) : k_(num_rounds), mult_(mult) {}
  bool WakeScheduled() const override { return true; }
  int InitialWakeRound(int node) const override { return Rank(node); }
  size_t StateBytes() const override { return sizeof(int64_t); }
  void InitState(int node, void* state) override {
    *static_cast<int64_t*>(state) = node;
  }
  void OnRound(NodeContext& ctx) override {
    const int rank = Rank(ctx.node());
    const int r = ctx.round();
    int64_t& acc = ctx.State<int64_t>();
    for (int p = 0; p < ctx.degree(); ++p) {
      const Message& m = ctx.Recv(p);
      if (m.present()) acc = acc * 31 + m.word0;
    }
    if (r == rank) ctx.Broadcast(Message::Of(ctx.id()));
    if (r >= k_ - 1) {
      ctx.Halt();
      return;
    }
    ctx.SleepUntil(r < rank ? rank : k_ - 1);
  }

 private:
  int Rank(int node) const { return (node * mult_) % k_; }
  const int k_;
  const int mult_;
};

TEST(BatchNetworkRelabel, WakeScheduledBitIdentical) {
  const int n = 160;
  Graph g = UniformRandomTree(n, 2300);
  auto ids = DefaultIds(n, 2301);
  const std::vector<int> mults = {1, 3, 5};

  auto run = [&](bool relabel_on, bool scheduled_on, int threads) {
    NetworkOptions opt;
    opt.relabel = relabel_on;
    opt.wake_scheduling = scheduled_on;
    std::vector<std::unique_ptr<StagedSweepAlg>> algs;
    std::vector<Algorithm*> ptrs;
    for (int m : mults) {
      algs.push_back(std::make_unique<StagedSweepAlg>(9, m));
      ptrs.push_back(algs.back().get());
    }
    BatchNetwork net(g, ids, static_cast<int>(mults.size()), threads, opt);
    net.Run(ptrs, 64);
    std::vector<std::vector<uint64_t>> chains;
    std::vector<std::vector<int64_t>> states;
    std::vector<int64_t> visits;
    for (size_t b = 0; b < mults.size(); ++b) {
      chains.push_back(net.round_digests(static_cast<int>(b)));
      std::vector<int64_t> st(n);
      for (int v = 0; v < n; ++v) {
        st[v] = net.StateAt<int64_t>(static_cast<int>(b), v);
      }
      states.push_back(std::move(st));
      int64_t vis = 0;
      for (const RoundStats& rs : net.round_stats(static_cast<int>(b))) {
        vis += rs.visits;
      }
      visits.push_back(vis);
    }
    return std::make_tuple(chains, states, visits);
  };

  const auto want = run(false, false, 1);
  for (int threads : {1, 3}) {
    for (bool scheduled : {false, true}) {
      const auto got = run(true, scheduled, threads);
      // Transcripts and outputs identical; under scheduling only visits may
      // shrink (and must match the non-relabeled scheduled run exactly).
      EXPECT_EQ(std::get<0>(got), std::get<0>(want))
          << "threads=" << threads << " scheduled=" << scheduled;
      EXPECT_EQ(std::get<1>(got), std::get<1>(want))
          << "threads=" << threads << " scheduled=" << scheduled;
      if (scheduled) {
        const auto plain_scheduled = run(false, true, 1);
        EXPECT_EQ(std::get<2>(got), std::get<2>(plain_scheduled))
            << "threads=" << threads;
      } else {
        EXPECT_EQ(std::get<2>(got), std::get<2>(want))
            << "threads=" << threads;
      }
    }
  }
}

// Checkpoints cross the relabel boundary in both directions: a snapshot is
// canonically external-indexed, so a relabeled batch's checkpoint resumed
// on a plain batch (and vice versa) must finish bit-identically to the
// uninterrupted plain run — this pins the Checkpoint gather, the
// ApplySnapshot scatter, and the rank-order worklist rebuild.
TEST(BatchNetworkRelabel, CheckpointCrossesRelabelBoundary) {
  const int n = 220;
  const std::vector<int> ks = {2, 5, 3};
  Graph tree = UniformRandomTree(n, 2400);
  auto ids = DefaultIds(n, 2401);
  const int B = static_cast<int>(ks.size());
  constexpr int kMaxRounds = 1000;

  auto make_algs = [&](std::vector<std::unique_ptr<Algorithm>>& own) {
    std::vector<Algorithm*> ptrs;
    for (int k : ks) {
      own.push_back(MakeRakeCompressAlgorithm(tree, k));
      ptrs.push_back(own.back().get());
    }
    return ptrs;
  };

  // Uninterrupted plain-batch reference transcript.
  std::vector<uint64_t> want_digests;
  std::vector<int> want_rounds;
  std::vector<int64_t> want_messages;
  {
    std::vector<std::unique_ptr<Algorithm>> own;
    BatchNetwork net(tree, ids, B);
    want_rounds = net.Run(make_algs(own), kMaxRounds);
    for (int b = 0; b < B; ++b) {
      want_digests.push_back(net.last_digest(b));
      want_messages.push_back(net.messages_delivered(b));
    }
  }

  NetworkOptions plain, relabel;
  relabel.relabel = true;
  for (int pause : {1, 4}) {
    for (bool src_relabel : {false, true}) {
      SCOPED_TRACE("pause=" + std::to_string(pause) +
                   " src_relabel=" + std::to_string(src_relabel));
      std::string bytes;
      {
        std::vector<std::unique_ptr<Algorithm>> own;
        BatchNetwork src(tree, ids, B, 1, src_relabel ? relabel : plain);
        src.RunUntil(make_algs(own), kMaxRounds, pause);
        ASSERT_TRUE(src.paused());
        std::ostringstream out;
        src.Checkpoint(out);
        bytes = out.str();
      }
      std::vector<std::unique_ptr<Algorithm>> own;
      BatchNetwork dst(tree, ids, B, 1, src_relabel ? plain : relabel);
      std::istringstream in(bytes);
      dst.Resume(in);
      EXPECT_EQ(dst.Run(make_algs(own), kMaxRounds), want_rounds);
      for (int b = 0; b < B; ++b) {
        EXPECT_EQ(dst.last_digest(b), want_digests[b]) << "instance " << b;
        EXPECT_EQ(dst.messages_delivered(b), want_messages[b])
            << "instance " << b;
      }
    }
  }
}

}  // namespace
}  // namespace treelocal
