// Differential tests: the optimized epoch-stamped/worklist engine
// (local::Network) must be bit-identical to the naive reference engine
// (local::ReferenceNetwork) — same rounds, same message counts, same
// per-round counters, same algorithm outputs — across random trees and
// bounded-degree graphs. Plus regressions for the worklist: halted nodes
// are never re-invoked and their channels fall silent; and for engine
// reuse: repeated Run calls on one Network reproduce fresh-engine results.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/local/reference_network.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using local::Algorithm;
using local::Message;
using local::Network;
using local::NodeContext;
using local::ReferenceNetwork;

// Exercises the full NodeContext API with a deterministic, message-dependent
// transcript: every round each node folds its inbox into a running digest,
// re-broadcasts it, and sends an extra (overwriting) message on port 0 to
// exercise last-write-wins accounting. Node v halts at a staggered,
// id-dependent round, so the active set shrinks gradually.
class DigestAlgorithm : public Algorithm {
 public:
  explicit DigestAlgorithm(int n) : digest_(n, 0) {}

  void OnRound(NodeContext& ctx) override {
    const int v = ctx.node();
    uint64_t d = digest_[v] * 1000003ULL + 17;
    d += static_cast<uint64_t>(ctx.id());
    for (int p = 0; p < ctx.degree(); ++p) {
      const Message& m = ctx.Recv(p);
      if (m.present()) {
        d = d * 31 + static_cast<uint64_t>(m.word0) +
            3 * static_cast<uint64_t>(m.word1) + m.size;
      }
      d += static_cast<uint64_t>(ctx.neighbor_id(p));
    }
    digest_[v] = d;
    const int halt_round = static_cast<int>(ctx.id() % 11) + 1;
    if (ctx.round() >= halt_round) {
      ctx.Halt();
      return;
    }
    ctx.Broadcast(Message::Of(static_cast<int64_t>(d & 0x7fffffff), v));
    if (ctx.degree() > 0) {
      // Double-send on port 0: only the last message may count.
      ctx.Send(0, Message::Of(static_cast<int64_t>(d % 97)));
    }
  }

  std::vector<uint64_t> digest_;
};

// Rake-compress-shaped halting: leaves mark themselves and fall silent, so
// the active set collapses from the outside in — the worklist's hard case.
class PeelLeaves : public Algorithm {
 public:
  explicit PeelLeaves(const Graph& g) : live_degree_(g.NumNodes()), mark_round_(g.NumNodes(), -1) {
    for (int v = 0; v < g.NumNodes(); ++v) live_degree_[v] = g.Degree(v);
  }

  void OnRound(NodeContext& ctx) override {
    const int v = ctx.node();
    for (int p = 0; p < ctx.degree(); ++p) {
      if (ctx.Recv(p).present()) --live_degree_[v];
    }
    if (live_degree_[v] <= 1) {
      mark_round_[v] = ctx.round();
      ctx.Broadcast(Message::Of(1));
      ctx.Halt();
    }
  }

  std::vector<int> live_degree_;
  std::vector<int> mark_round_;
};

struct RunOutcome {
  int rounds = 0;
  int64_t messages = 0;
  std::vector<local::RoundStats> stats;
};

template <typename AlgFactory>
void ExpectEnginesAgree(const Graph& g, const std::vector<int64_t>& ids,
                        AlgFactory make_alg, int max_rounds) {
  auto fast_alg = make_alg();
  auto ref_alg = make_alg();
  Network fast(g, ids);
  ReferenceNetwork ref(g, ids);
  RunOutcome a{fast.Run(*fast_alg, max_rounds), fast.messages_delivered(),
               fast.round_stats()};
  RunOutcome b{ref.Run(*ref_alg, max_rounds), ref.messages_delivered(),
               ref.round_stats()};
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(fast_alg->State(), ref_alg->State());
}

// Wrappers giving both algorithms a uniform State() accessor.
struct DigestRunner : DigestAlgorithm {
  using DigestAlgorithm::DigestAlgorithm;
  const std::vector<uint64_t>& State() const { return digest_; }
};
struct PeelRunner : PeelLeaves {
  using PeelLeaves::PeelLeaves;
  const std::vector<int>& State() const { return mark_round_; }
};

TEST(EngineDifferentialTest, DigestOnRandomTrees) {
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 2 + trial * 17;
    Graph g = UniformRandomTree(n, 100 + trial);
    auto ids = DefaultIds(n, 200 + trial);
    ExpectEnginesAgree(
        g, ids, [&] { return std::make_unique<DigestRunner>(n); }, 64);
  }
}

TEST(EngineDifferentialTest, DigestOnBoundedDegreeGraphs) {
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 64 + trial * 33;
    Graph g = BoundedDegreeRandomTree(n, 3 + trial % 6, 300 + trial);
    auto ids = DefaultIds(n, 400 + trial);
    ExpectEnginesAgree(
        g, ids, [&] { return std::make_unique<DigestRunner>(n); }, 64);
  }
}

TEST(EngineDifferentialTest, DigestOnForestUnions) {
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = ForestUnion(128, 2 + trial % 3, 500 + trial);
    auto ids = DefaultIds(g.NumNodes(), 600 + trial);
    ExpectEnginesAgree(
        g, ids, [&] { return std::make_unique<DigestRunner>(g.NumNodes()); },
        64);
  }
}

TEST(EngineDifferentialTest, PeelLeavesOnTrees) {
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 3 + trial * 41;
    Graph g = UniformRandomTree(n, 700 + trial);
    auto ids = DefaultIds(n, 800 + trial);
    ExpectEnginesAgree(
        g, ids, [&] { return std::make_unique<PeelRunner>(g); }, 4 * n + 8);
  }
}

// The production pipeline head-to-head: the real rake-and-compress process
// must produce identical markings, rounds, message counts, and per-round
// trajectories on both engines across tree families and k.
TEST(EngineDifferentialTest, RakeCompressBitIdentical) {
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 16 + trial * 113;
    Graph tree = trial % 2 == 0 ? UniformRandomTree(n, 900 + trial)
                                : BoundedDegreeRandomTree(n, 4, 900 + trial);
    auto ids = DefaultIds(n, 950 + trial);
    for (int k : {2, 4, 16}) {
      RakeCompressResult fast = RunRakeCompress(tree, ids, k);
      RakeCompressResult ref = RunRakeCompressReference(tree, ids, k);
      EXPECT_EQ(fast.engine_rounds, ref.engine_rounds);
      EXPECT_EQ(fast.messages, ref.messages);
      EXPECT_EQ(fast.num_iterations, ref.num_iterations);
      EXPECT_EQ(fast.iteration, ref.iteration);
      EXPECT_EQ(fast.compressed, ref.compressed);
      EXPECT_EQ(fast.round_stats, ref.round_stats);
    }
  }
}

TEST(EngineDifferentialTest, SingleNodeAndEmptyGraphs) {
  Graph empty = Graph::FromEdges(0, {});
  Network net0(empty, {});
  DigestRunner alg0(0);
  EXPECT_EQ(net0.Run(alg0, 4), 0);
  EXPECT_EQ(net0.messages_delivered(), 0);

  Graph one = Graph::FromEdges(1, {});
  auto ids = DefaultIds(1, 1);
  ExpectEnginesAgree(
      one, ids, [&] { return std::make_unique<DigestRunner>(1); }, 64);
}

// Regression: a halted node's OnRound must never run again, on either
// engine, and the per-round active counts must match the halting schedule.
TEST(EngineDifferentialTest, HaltedNodesNeverReinvoked) {
  class CountCalls : public Algorithm {
   public:
    explicit CountCalls(int n) : calls_(n, 0), halted_at_(n, -1) {}
    void OnRound(NodeContext& ctx) override {
      const int v = ctx.node();
      ++calls_[v];
      ASSERT_EQ(halted_at_[v], -1) << "OnRound after Halt for node " << v;
      if (ctx.round() >= v % 5) {
        halted_at_[v] = ctx.round();
        ctx.Halt();
      }
    }
    std::vector<int> calls_;
    std::vector<int> halted_at_;
    const std::vector<int>& State() const { return calls_; }
  };
  const int n = 50;
  Graph g = UniformRandomTree(n, 42);
  auto ids = DefaultIds(n, 43);
  for (int engine = 0; engine < 2; ++engine) {
    CountCalls alg(n);
    int rounds;
    std::vector<local::RoundStats> stats;
    if (engine == 0) {
      Network net(g, ids);
      rounds = net.Run(alg, 100);
      stats = net.round_stats();
    } else {
      ReferenceNetwork net(g, ids);
      rounds = net.Run(alg, 100);
      stats = net.round_stats();
    }
    EXPECT_EQ(rounds, 5);
    ASSERT_EQ(stats.size(), 5u);
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(alg.calls_[v], v % 5 + 1) << "node " << v;
    }
    // Round r runs exactly the nodes with v % 5 >= r.
    for (int r = 0; r < 5; ++r) {
      int expect_active = 0;
      for (int v = 0; v < n; ++v) {
        if (v % 5 >= r) ++expect_active;
      }
      EXPECT_EQ(stats[r].active_nodes, expect_active) << "round " << r;
    }
  }
}

// Regression: after a node halts, its channels fall silent — receivers see
// no message even though the halted node's last payload is still physically
// in the (never-cleared) mailbox of the optimized engine.
TEST(EngineDifferentialTest, HaltedChannelsFallSilent) {
  class SilenceProbe : public Algorithm {
   public:
    void OnRound(NodeContext& ctx) override {
      if (ctx.node() == 0) {
        // Sends a payload every round until halting at round 1.
        ctx.Broadcast(Message::Of(77));
        if (ctx.round() >= 1) ctx.Halt();
        return;
      }
      if (ctx.round() >= 1) {
        received_.push_back(ctx.Recv(0).present());
      }
      if (ctx.round() >= 4) ctx.Halt();
    }
    std::vector<bool> received_;
  };
  Graph g = Path(2);
  auto ids = DefaultIds(2, 9);
  Network net(g, ids);
  SilenceProbe alg;
  net.Run(alg, 10);
  // Rounds 1 and 2 deliver (sent in rounds 0 and 1); rounds 3, 4 silent.
  ASSERT_EQ(alg.received_.size(), 4u);
  EXPECT_TRUE(alg.received_[0]);
  EXPECT_TRUE(alg.received_[1]);
  EXPECT_FALSE(alg.received_[2]);
  EXPECT_FALSE(alg.received_[3]);
}

// Regression: one Network object is reusable across runs (no stale state
// leaks between runs; mailboxes are invalidated by epoch, not cleared).
TEST(EngineDifferentialTest, NetworkReuseMatchesFreshEngine) {
  const int n = 200;
  Graph g = UniformRandomTree(n, 77);
  auto ids = DefaultIds(n, 78);
  Network reused(g, ids);

  RunOutcome first;
  {
    DigestRunner alg(n);
    first.rounds = reused.Run(alg, 64);
    first.messages = reused.messages_delivered();
    first.stats = reused.round_stats();
  }
  // Interleave a different algorithm to dirty the mailboxes.
  {
    PeelRunner alg(g);
    reused.Run(alg, 4 * n + 8);
  }
  // Re-running the first algorithm must reproduce the first outcome and
  // match a fresh engine bit-for-bit.
  DigestRunner again(n);
  RunOutcome second{reused.Run(again, 64), reused.messages_delivered(),
                    reused.round_stats()};
  EXPECT_EQ(first.rounds, second.rounds);
  EXPECT_EQ(first.messages, second.messages);
  EXPECT_EQ(first.stats, second.stats);

  Network fresh(g, ids);
  DigestRunner fresh_alg(n);
  fresh.Run(fresh_alg, 64);
  EXPECT_EQ(fresh_alg.digest_, again.digest_);
  EXPECT_EQ(fresh.messages_delivered(), second.messages);
}

// The per-round message counter matches a hand-count: star center
// broadcasts (n-1 messages) while each leaf sends one message per round.
TEST(EngineDifferentialTest, RoundStatsCountMessages) {
  const int n = 6;
  class TwoRounds : public Algorithm {
   public:
    void OnRound(NodeContext& ctx) override {
      if (ctx.round() == 1) {
        ctx.Halt();
        return;
      }
      ctx.Broadcast(Message::Of(5));
    }
  };
  Graph g = Star(n);
  Network net(g, DefaultIds(n, 3));
  TwoRounds alg;
  EXPECT_EQ(net.Run(alg, 5), 2);
  ASSERT_EQ(net.round_stats().size(), 2u);
  // Round 0: center sends n-1, each of n-1 leaves sends 1.
  EXPECT_EQ(net.round_stats()[0].active_nodes, n);
  EXPECT_EQ(net.round_stats()[0].messages_sent, 2 * (n - 1));
  EXPECT_EQ(net.round_stats()[1].active_nodes, n);
  EXPECT_EQ(net.round_stats()[1].messages_sent, 0);
  EXPECT_EQ(net.messages_delivered(), 2 * (n - 1));
}

}  // namespace
}  // namespace treelocal
