// Unit tests for the fork/join worker pool behind the parallel engines:
// correct task coverage at any num_tasks/lane ratio, reuse across many
// fork/join cycles (no respawn, no state leak), exception propagation to
// the caller with the pool usable afterwards, and rejection of nested
// ParallelFor calls.
#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace treelocal::support {
namespace {

TEST(ThreadPoolTest, CoversEveryTaskExactlyOnce) {
  for (int lanes : {1, 2, 3, 8}) {
    ThreadPool pool(lanes);
    for (int num_tasks : {0, 1, 2, 7, 64}) {
      std::vector<std::atomic<int>> hits(num_tasks);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(num_tasks, [&](int t) {
        hits[t].fetch_add(1, std::memory_order_relaxed);
      });
      for (int t = 0; t < num_tasks; ++t) {
        EXPECT_EQ(hits[t].load(), 1) << "lanes=" << lanes << " task=" << t;
      }
    }
  }
}

TEST(ThreadPoolTest, JoinPublishesTaskWrites) {
  // Plain (non-atomic) per-task slots: the barrier must make every task's
  // write visible to the caller without any synchronization on our side.
  ThreadPool pool(4);
  const int kTasks = 256;
  std::vector<int64_t> slot(kTasks, 0);
  pool.ParallelFor(kTasks, [&](int t) { slot[t] = int64_t{t} * t + 1; });
  int64_t sum = 0;
  for (int t = 0; t < kTasks; ++t) sum += slot[t] - int64_t{t} * t;
  EXPECT_EQ(sum, kTasks);  // every slot was written exactly once
}

TEST(ThreadPoolTest, ReusableAcrossManyForkJoins) {
  // The engines fork/join every round; thousands of reuses must keep
  // working on the same persistent workers.
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.ParallelFor(5, [&](int t) {
      total.fetch_add(t + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), int64_t{2000} * (1 + 2 + 3 + 4 + 5));
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(16,
                       [&](int t) {
                         if (t == 11) throw std::runtime_error("task 11");
                       }),
      std::runtime_error);
  // Every surviving task of a throwing batch still ran or was skipped
  // cleanly, and the pool is fully usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, PropagatesExceptionOnSingleLanePool) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   3, [&](int t) { if (t == 2) throw std::logic_error("x"); }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, NestedParallelForThrows) {
  // Nesting would deadlock a fork/join pool (the inner call would wait on
  // lanes the outer call occupies); it must be rejected loudly — from the
  // inline single-lane path too.
  for (int lanes : {1, 4}) {
    ThreadPool pool(lanes);
    bool caught = false;
    try {
      pool.ParallelFor(2, [&](int) { pool.ParallelFor(2, [](int) {}); });
    } catch (const std::logic_error&) {
      caught = true;
    }
    EXPECT_TRUE(caught) << "lanes=" << lanes;
    // Still usable after the rejected nesting.
    std::atomic<int> count{0};
    pool.ParallelFor(4, [&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 4);
  }
}

TEST(ThreadPoolTest, RejectsNonPositiveLaneCount) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(ThreadPool(-2), std::invalid_argument);
}

TEST(ThreadPoolTest, UnevenWorkStealsAcrossLanes) {
  // Tasks are claimed dynamically, so a few heavy tasks must not pin the
  // light ones behind them: all tasks complete regardless of imbalance.
  ThreadPool pool(4);
  std::vector<std::atomic<char>> done(64);
  for (auto& d : done) d.store(0);
  pool.ParallelFor(64, [&](int t) {
    volatile int64_t sink = 0;
    const int64_t spin = t % 13 == 0 ? 200000 : 10;
    for (int64_t i = 0; i < spin; ++i) sink = sink + i;
    done[t].store(1);
  });
  for (int t = 0; t < 64; ++t) EXPECT_EQ(done[t].load(), 1) << t;
}

}  // namespace
}  // namespace treelocal::support
