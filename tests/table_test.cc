#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/support/json.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(int64_t{42}), "42");
  EXPECT_EQ(Table::Num(7), "7");
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.14159, 0), "3");
  EXPECT_EQ(Table::Num(-1.5, 1), "-1.5");
}

TEST(TableTest, CsvRoundTrip) {
  Table t({"a", "b"});
  t.AddRow({"1", "x"});
  t.AddRow({"2", "y"});
  std::string path = "/tmp/treelocal_table_test";
  t.WriteCsv(path);
  std::ifstream in(path + ".csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2,y");
  std::remove((path + ".csv").c_str());
}

TEST(TableTest, WriteJsonQuotesOnlyNonNumbers) {
  Table t({"name", "count", "ratio"});
  t.AddRow({"uniform", "42", "0.50"});
  // Non-finite and hex-looking cells must be quoted, never emitted as bare
  // JSON-invalid tokens (inf/nan parse fully under strtod).
  t.AddRow({"star", "inf", "nan"});
  t.AddRow({"say \"hi\"", "0x10", "-1.5e3"});
  std::string path = "/tmp/treelocal_table_json_test";
  t.WriteJson(path);
  std::ifstream in(path + ".json");
  ASSERT_TRUE(in.good());
  std::stringstream all;
  all << in.rdbuf();
  std::string text = all.str();
  EXPECT_NE(text.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"ratio\": 0.50"), std::string::npos);
  EXPECT_NE(text.find("\"count\": \"inf\""), std::string::npos);
  EXPECT_NE(text.find("\"ratio\": \"nan\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": \"0x10\""), std::string::npos);
  EXPECT_NE(text.find("\"ratio\": -1.5e3"), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"say \\\"hi\\\"\""), std::string::npos);
  std::remove((path + ".json").c_str());
}

TEST(TableTest, JsonHelpers) {
  EXPECT_TRUE(json::IsNumberToken("42"));
  EXPECT_TRUE(json::IsNumberToken("-1.5e3"));
  EXPECT_TRUE(json::IsNumberToken("0"));
  EXPECT_TRUE(json::IsNumberToken("0.50"));
  EXPECT_TRUE(json::IsNumberToken("1e+9"));
  EXPECT_FALSE(json::IsNumberToken("inf"));
  EXPECT_FALSE(json::IsNumberToken("nan"));
  EXPECT_FALSE(json::IsNumberToken("0x10"));
  EXPECT_FALSE(json::IsNumberToken(""));
  EXPECT_FALSE(json::IsNumberToken("12a"));
  // Valid for strtod but not for strict JSON readers:
  EXPECT_FALSE(json::IsNumberToken("+5"));
  EXPECT_FALSE(json::IsNumberToken("042"));
  EXPECT_FALSE(json::IsNumberToken(".5"));
  EXPECT_FALSE(json::IsNumberToken("5."));
  EXPECT_FALSE(json::IsNumberToken("-"));
  EXPECT_FALSE(json::IsNumberToken("1e"));
  EXPECT_EQ(json::Number(0.5), "0.5");
  EXPECT_EQ(json::Number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json::Number(std::nan("")), "null");
  EXPECT_EQ(json::Quote("a\nb\"c\\d\x01"), "\"a\\nb\\\"c\\\\d\\u0001\"");
}

TEST(TableTest, PrintDoesNotCrashOnEmpty) {
  Table t({"col"});
  t.Print("empty table");  // no rows
}

TEST(TableTest, PrintAlignsColumns) {
  // Smoke: wide cells must not throw and must contain both values.
  Table t({"n", "value"});
  t.AddRow({"1", "short"});
  t.AddRow({"100000", "a-much-longer-cell"});
  testing::internal::CaptureStdout();
  t.Print("alignment");
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("short"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-cell"), std::string::npos);
  EXPECT_NE(out.find("alignment"), std::string::npos);
}

}  // namespace
}  // namespace treelocal
