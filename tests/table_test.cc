#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/support/table.h"

namespace treelocal {
namespace {

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(int64_t{42}), "42");
  EXPECT_EQ(Table::Num(7), "7");
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.14159, 0), "3");
  EXPECT_EQ(Table::Num(-1.5, 1), "-1.5");
}

TEST(TableTest, CsvRoundTrip) {
  Table t({"a", "b"});
  t.AddRow({"1", "x"});
  t.AddRow({"2", "y"});
  std::string path = "/tmp/treelocal_table_test";
  t.WriteCsv(path);
  std::ifstream in(path + ".csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2,y");
  std::remove((path + ".csv").c_str());
}

TEST(TableTest, PrintDoesNotCrashOnEmpty) {
  Table t({"col"});
  t.Print("empty table");  // no rows
}

TEST(TableTest, PrintAlignsColumns) {
  // Smoke: wide cells must not throw and must contain both values.
  Table t({"n", "value"});
  t.AddRow({"1", "short"});
  t.AddRow({"100000", "a-much-longer-cell"});
  testing::internal::CaptureStdout();
  t.Print("alignment");
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("short"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-cell"), std::string::npos);
  EXPECT_NE(out.find("alignment"), std::string::npos);
}

}  // namespace
}  // namespace treelocal
