// Validates the round accounting used by the pipelines' gather phases
// (DESIGN.md substitution #2): the pipelines charge 2*ecc(leader)+1 rounds
// per component instead of literally flooding the whole component through
// the engine. Here we run a *real* knowledge-flooding algorithm on the
// engine (knowledge as a 64-bit membership mask, so components up to 64
// nodes) and check that the leader first holds the full component exactly
// at round ecc(leader) — information travels one hop per round, so gather
// plus broadcast-back costs 2*ecc+1 as charged.
#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/graph/subgraph.h"
#include "src/local/network.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

// Every node floods its knowledge bitmask each round until a globally known
// deadline (2n rounds — all nodes know n). The leader records the first
// round at which it knows the whole component.
class GatherEcho : public local::Algorithm {
 public:
  GatherEcho(int n, int leader, uint64_t target)
      : knowledge_(n, 0), leader_(leader), target_(target), deadline_(2 * n) {}

  void OnRound(local::NodeContext& ctx) override {
    const int v = ctx.node();
    if (ctx.round() == 0) {
      knowledge_[v] = uint64_t{1} << v;
    } else {
      for (int p = 0; p < ctx.degree(); ++p) {
        const local::Message& msg = ctx.Recv(p);
        if (msg.present()) knowledge_[v] |= static_cast<uint64_t>(msg.word0);
      }
    }
    if (v == leader_ && gather_rounds_ < 0 && knowledge_[v] == target_) {
      gather_rounds_ = ctx.round();
    }
    if (ctx.round() >= deadline_) {
      ctx.Halt();
      return;
    }
    ctx.Broadcast(local::Message::Of(static_cast<int64_t>(knowledge_[v])));
  }

  int gather_rounds() const { return gather_rounds_; }

 private:
  std::vector<uint64_t> knowledge_;
  int leader_;
  uint64_t target_;
  int deadline_;
  int gather_rounds_ = -1;
};

TEST(GatherAccountingTest, LeaderLearnsComponentInEccentricityRounds) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 8 + static_cast<int>(rng.NextBelow(56));  // <= 64 nodes
    Graph tree = UniformRandomTree(n, trial * 31 + 5);
    auto ids = DefaultIds(n, trial + 1);

    std::vector<char> mask(n, 1);
    auto leaders = MaskedComponentLeaders(tree, mask, ids);
    ASSERT_EQ(leaders.size(), 1u);
    int leader = leaders[0].leader;
    int ecc = leaders[0].eccentricity;

    uint64_t target = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
    GatherEcho alg(n, leader, target);
    local::Network net(tree, ids);
    net.Run(alg, 4 * n + 8);

    EXPECT_EQ(alg.gather_rounds(), ecc) << "n=" << n << " trial=" << trial;
  }
}

TEST(GatherAccountingTest, PathLeaderAtEndNeedsLengthRounds) {
  const int n = 12;
  Graph path = Path(n);
  // Force leader = node 0 (eccentricity n-1) via a maximal key.
  std::vector<int64_t> key(n);
  for (int v = 0; v < n; ++v) key[v] = n - v;
  std::vector<char> mask(n, 1);
  auto leaders = MaskedComponentLeaders(path, mask, key);
  ASSERT_EQ(leaders[0].leader, 0);
  EXPECT_EQ(leaders[0].eccentricity, n - 1);

  GatherEcho alg(n, 0, (uint64_t{1} << n) - 1);
  local::Network net(path, DefaultIds(n, 3));
  net.Run(alg, 8 * n);
  EXPECT_EQ(alg.gather_rounds(), n - 1);
}

TEST(GatherAccountingTest, StarLeaderCenterNeedsOneRound) {
  const int n = 20;
  Graph star = Star(n);
  std::vector<int64_t> key(n, 0);
  key[0] = 100;  // center is leader, ecc = 1
  std::vector<char> mask(n, 1);
  auto leaders = MaskedComponentLeaders(star, mask, key);
  ASSERT_EQ(leaders[0].leader, 0);
  EXPECT_EQ(leaders[0].eccentricity, 1);

  GatherEcho alg(n, 0, (uint64_t{1} << n) - 1);
  local::Network net(star, DefaultIds(n, 4));
  net.Run(alg, 50);
  EXPECT_EQ(alg.gather_rounds(), 1);
}

TEST(GatherAccountingTest, MaskedComponentAccountingOnRakedParts) {
  // The real pipeline scenario: gather happens inside masked components.
  // For each component of a random mask over a tree, check the leader's
  // flood time within the component equals the accounted eccentricity.
  Graph tree = UniformRandomTree(48, 9);
  const int n = tree.NumNodes();
  Rng rng(10);
  std::vector<char> mask(n, 0);
  for (int v = 0; v < n; ++v) mask[v] = rng.NextBool(0.7);
  auto ids = DefaultIds(n, 11);
  auto leaders = MaskedComponentLeaders(tree, mask, ids);

  for (const auto& comp : leaders) {
    // Flood inside the component only: build the induced subgraph.
    std::vector<char> node_mask(n, 0);
    for (int v : comp.nodes) node_mask[v] = 1;
    Subgraph sub = InduceByNodes(tree, node_mask);
    const int sn = sub.graph.NumNodes();
    if (sn > 64) continue;
    uint64_t target = sn == 64 ? ~uint64_t{0} : (uint64_t{1} << sn) - 1;
    GatherEcho alg(sn, sub.host_to_node[comp.leader], target);
    local::Network net(sub.graph, RestrictToSubgraph(sub, ids));
    net.Run(alg, 4 * sn + 8);
    EXPECT_EQ(alg.gather_rounds(), comp.eccentricity);
  }
}

}  // namespace
}  // namespace treelocal
