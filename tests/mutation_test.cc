// Failure-injection tests: take a valid solution produced by a pipeline and
// corrupt it in targeted, semantically meaningful ways; the validators must
// catch every injected fault. This guards against validators that are
// vacuously true (the most dangerous failure mode of a reproduction whose
// correctness claims rest on its own validators).
#include <gtest/gtest.h>

#include "src/core/complexity.h"
#include "src/core/transform_edge.h"
#include "src/core/transform_node.h"
#include "src/graph/generators.h"
#include "src/problems/coloring.h"
#include "src/problems/edge_coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

int64_t IdSpace(int n) { return static_cast<int64_t>(n) * n * n; }

class MutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = UniformRandomTree(200, 1);
    ids_ = DefaultIds(200, 2);
  }
  Graph tree_;
  std::vector<int64_t> ids_;
};

TEST_F(MutationTest, MisFlippingMemberOut) {
  MisProblem mis;
  auto result = SolveNodeProblemOnTree(mis, tree_, ids_, IdSpace(200), 3);
  ASSERT_TRUE(result.valid);
  // Turn one MIS node's labels into U everywhere: its neighbors that
  // pointed at it now lie, and/or some node loses its only cover.
  auto in_set = MisProblem::ExtractSet(tree_, result.labeling);
  int member = -1;
  for (int v = 0; v < tree_.NumNodes(); ++v) {
    if (in_set[v] && tree_.Degree(v) > 0) member = v;
  }
  ASSERT_GE(member, 0);
  HalfEdgeLabeling corrupted = result.labeling;
  for (int e : tree_.IncidentEdges(member)) {
    corrupted.Set(e, member, MisProblem::kU);
  }
  EXPECT_FALSE(mis.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, MisAddingAdjacentMember) {
  MisProblem mis;
  auto result = SolveNodeProblemOnTree(mis, tree_, ids_, IdSpace(200), 3);
  ASSERT_TRUE(result.valid);
  auto in_set = MisProblem::ExtractSet(tree_, result.labeling);
  // Promote a non-member adjacent to a member: breaks independence.
  int victim = -1;
  for (int v = 0; v < tree_.NumNodes() && victim < 0; ++v) {
    if (in_set[v]) continue;
    for (int u : tree_.Neighbors(v)) {
      if (in_set[u]) victim = v;
    }
  }
  ASSERT_GE(victim, 0);
  HalfEdgeLabeling corrupted = result.labeling;
  for (int e : tree_.IncidentEdges(victim)) {
    corrupted.Set(e, victim, MisProblem::kM);
  }
  EXPECT_FALSE(mis.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, ColoringMonochromaticEdge) {
  ColoringProblem problem(ColoringProblem::Mode::kDegPlusOne, 0);
  auto result = SolveNodeProblemOnTree(problem, tree_, ids_, IdSpace(200), 3);
  ASSERT_TRUE(result.valid);
  // Copy one endpoint's color to the other endpoint of edge 0.
  auto [u, v] = tree_.Endpoints(0);
  Label cu = result.labeling.Get(0, u);
  HalfEdgeLabeling corrupted = result.labeling;
  for (int e : tree_.IncidentEdges(v)) corrupted.Set(e, v, cu);
  EXPECT_FALSE(problem.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, ColoringOutOfRangeColor) {
  ColoringProblem problem(ColoringProblem::Mode::kDegPlusOne, 0);
  auto result = SolveNodeProblemOnTree(problem, tree_, ids_, IdSpace(200), 3);
  ASSERT_TRUE(result.valid);
  // A leaf may only use colors {1, 2}: give it 7.
  int leaf = -1;
  for (int v = 0; v < tree_.NumNodes(); ++v) {
    if (tree_.Degree(v) == 1) leaf = v;
  }
  ASSERT_GE(leaf, 0);
  HalfEdgeLabeling corrupted = result.labeling;
  corrupted.Set(tree_.IncidentEdges(leaf)[0], leaf, 7);
  EXPECT_FALSE(problem.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, MatchingUnmatchedEdgeBetweenUnmatchedNodes) {
  MatchingProblem mm;
  auto result = SolveEdgeProblemBoundedArboricity(mm, tree_, ids_,
                                                  IdSpace(200), 1, 5);
  ASSERT_TRUE(result.valid);
  // Remove a matched edge entirely (both endpoints become unmatched but
  // their other edges still claim P or the {O,O} edge appears).
  auto matched = MatchingProblem::ExtractMatching(tree_, result.labeling);
  int medge = -1;
  for (int e = 0; e < tree_.NumEdges(); ++e) {
    if (matched[e]) medge = e;
  }
  ASSERT_GE(medge, 0);
  HalfEdgeLabeling corrupted = result.labeling;
  corrupted.SetSlot(medge, 0, MatchingProblem::kO);
  corrupted.SetSlot(medge, 1, MatchingProblem::kO);
  EXPECT_FALSE(mm.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, MatchingDoubleMatchAtNode) {
  MatchingProblem mm;
  auto result = SolveEdgeProblemBoundedArboricity(mm, tree_, ids_,
                                                  IdSpace(200), 1, 5);
  ASSERT_TRUE(result.valid);
  // Find a matched node with a second, unmatched edge and match that too.
  auto matched = MatchingProblem::ExtractMatching(tree_, result.labeling);
  int extra_edge = -1;
  for (int e = 0; e < tree_.NumEdges() && extra_edge < 0; ++e) {
    if (matched[e]) continue;
    auto [u, v] = tree_.Endpoints(e);
    for (int e2 : tree_.IncidentEdges(u)) {
      if (matched[e2]) extra_edge = e;
    }
    (void)v;
  }
  ASSERT_GE(extra_edge, 0);
  HalfEdgeLabeling corrupted = result.labeling;
  corrupted.SetSlot(extra_edge, 0, MatchingProblem::kM);
  corrupted.SetSlot(extra_edge, 1, MatchingProblem::kM);
  EXPECT_FALSE(mm.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, EdgeColoringRepeatedColorAtNode) {
  EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                              tree_.MaxDegree());
  auto result = SolveEdgeProblemBoundedArboricity(problem, tree_, ids_,
                                                  IdSpace(200), 1, 5);
  ASSERT_TRUE(result.valid);
  // Find a node with two incident edges and copy one edge's color pair onto
  // the other (both sides, keeping edge-level consistency): the node-level
  // distinctness must catch it.
  int hub = -1;
  for (int v = 0; v < tree_.NumNodes(); ++v) {
    if (tree_.Degree(v) >= 2) hub = v;
  }
  ASSERT_GE(hub, 0);
  int e1 = tree_.IncidentEdges(hub)[0];
  int e2 = tree_.IncidentEdges(hub)[1];
  HalfEdgeLabeling corrupted = result.labeling;
  corrupted.SetSlot(e2, 0, result.labeling.GetSlot(e1, 0));
  corrupted.SetSlot(e2, 1, result.labeling.GetSlot(e1, 1));
  EXPECT_FALSE(problem.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, EdgeColoringColorAboveEdgeDegreeBound) {
  EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                              tree_.MaxDegree());
  auto result = SolveEdgeProblemBoundedArboricity(problem, tree_, ids_,
                                                  IdSpace(200), 1, 5);
  ASSERT_TRUE(result.valid);
  // Pendant edge between two degree-1..2 nodes has a small edge-degree;
  // give it a color far above edge-degree+1 while keeping sides consistent.
  // Degree parts then violate a_i <= p or a1+a2 >= b+1.
  int pendant = -1;
  for (int e = 0; e < tree_.NumEdges(); ++e) {
    if (tree_.EdgeDegree(e) <= 2) pendant = e;
  }
  ASSERT_GE(pendant, 0);
  HalfEdgeLabeling corrupted = result.labeling;
  corrupted.SetSlot(pendant, 0, EdgeColoringProblem::Pack(1, 1000));
  corrupted.SetSlot(pendant, 1, EdgeColoringProblem::Pack(1, 1000));
  EXPECT_FALSE(problem.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, UnsetHalfEdgeRejected) {
  MisProblem mis;
  auto result = SolveNodeProblemOnTree(mis, tree_, ids_, IdSpace(200), 3);
  ASSERT_TRUE(result.valid);
  HalfEdgeLabeling corrupted = result.labeling;
  corrupted.SetSlot(0, 0, kUnsetLabel);
  EXPECT_FALSE(mis.ValidateGraph(tree_, corrupted));
}

TEST_F(MutationTest, RandomLabelFlipsMostlyCaught) {
  // Statistical guard: flip a random half-edge to a random in-alphabet
  // label; a large majority of such flips must be invalid for MIS (a U
  // where a P was, a P facing non-M, an M next to M, ...).
  MisProblem mis;
  auto result = SolveNodeProblemOnTree(mis, tree_, ids_, IdSpace(200), 3);
  ASSERT_TRUE(result.valid);
  Rng rng(42);
  int caught = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    HalfEdgeLabeling corrupted = result.labeling;
    int e = static_cast<int>(rng.NextBelow(tree_.NumEdges()));
    int slot = static_cast<int>(rng.NextBelow(2));
    Label old = corrupted.GetSlot(e, slot);
    Label neu = static_cast<Label>(rng.NextBelow(3));
    if (neu == old) neu = (neu + 1) % 3;
    corrupted.SetSlot(e, slot, neu);
    if (!mis.ValidateGraph(tree_, corrupted)) ++caught;
  }
  EXPECT_GT(caught, trials / 2);
}

}  // namespace
}  // namespace treelocal
