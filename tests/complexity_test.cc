#include <gtest/gtest.h>

#include <cmath>

#include "src/core/complexity.h"

namespace treelocal {
namespace {

TEST(ComplexityTest, SolveGLinearF) {
  // f(x) = x: g * log2(g) = log2(n). For n = 2^16: g*log2 g = 16 -> g ~ 7.3.
  double g = SolveG(std::pow(2.0, 16.0), LinearF());
  EXPECT_NEAR(g * std::log2(g), 16.0, 1e-6);
  EXPECT_GT(g, 6.0);
  EXPECT_LT(g, 9.0);
}

TEST(ComplexityTest, SolveGQuadraticF) {
  // f(x) = x^2: g^2 * log2(g) = log2(n).
  double n = std::pow(2.0, 20.0);
  double g = SolveG(n, QuadraticF());
  EXPECT_NEAR(g * g * std::log2(g), 20.0, 1e-6);
}

TEST(ComplexityTest, SolveGSatisfiesDefiningEquation) {
  // g^{f(g)} = n  <=>  f(g) * log2(g) = log2(n), across several f.
  for (double n : {1e3, 1e6, 1e9, 1e12}) {
    for (const auto& f : {LinearF(), QuadraticF(), PolylogF(12.0)}) {
      double g = SolveG(n, f);
      EXPECT_NEAR(f(g) * std::log2(g), std::log2(n), 1e-5) << "n=" << n;
    }
  }
}

TEST(ComplexityTest, SolveGPolylog12MatchesTheorem3Exponent) {
  // With f = log^12, log2(g) = log2(n)^{1/13} and f(g(n)) = log2(n)^{12/13}
  // — the Theorem 3 bound.
  double n = std::pow(2.0, 30.0);
  double g = SolveG(n, PolylogF(12.0));
  double expected_log_g = std::pow(std::log2(n), 1.0 / 13.0);
  EXPECT_NEAR(std::log2(g), expected_log_g, 0.01);
  double fg = PolylogF(12.0)(g);
  EXPECT_NEAR(fg, std::pow(std::log2(n), 12.0 / 13.0), 0.5);
}

TEST(ComplexityTest, SolveGMonotoneInN) {
  double prev = 0;
  for (double n = 16; n < 1e15; n *= 16) {
    double g = SolveG(n, LinearF());
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(ComplexityTest, SolveGEdgeCases) {
  EXPECT_EQ(SolveG(1.0, LinearF()), 1.0);
  EXPECT_EQ(SolveG(0.5, LinearF()), 1.0);
  EXPECT_GT(SolveG(2.0, LinearF()), 1.0);
}

TEST(ComplexityTest, ChooseKRespectsMinimum) {
  EXPECT_GE(ChooseK(4, QuadraticF()), 2);
  EXPECT_GE(ChooseK(1, QuadraticF()), 2);
  EXPECT_GE(ChooseK(1 << 20, QuadraticF(), 5), 5);
}

TEST(ComplexityTest, ChooseKGrowsWithN) {
  EXPECT_LE(ChooseK(1 << 10, LinearF()), ChooseK(1 << 20, LinearF()));
  EXPECT_LT(ChooseK(1 << 10, LinearF()), ChooseK(int64_t{1} << 40, LinearF()));
}

TEST(ComplexityTest, BarrierCurveShape) {
  // log n / log log n is increasing and sublogarithmic... it IS o(log n).
  double n = 1 << 20;
  EXPECT_LT(BarrierLogOverLogLog(n), std::log2(n));
  EXPECT_GT(BarrierLogOverLogLog(n), BarrierLogOverLogLog(1 << 10));
}

TEST(ComplexityTest, SeparationIsAsymptotic) {
  // The paper's separation: log^{12/13} n = o(log n / log log n). With
  // L = log2(n), the ratio of the two curves is log2(L) / L^{1/13}, which
  // turns decreasing at L = e^13 ~ 4.4e5 and then goes to 0. Work directly
  // in log-space to dodge double overflow.
  auto ratio = [](double big_l) {
    return std::log2(big_l) / std::pow(big_l, 1.0 / 13.0);
  };
  double prev = 1e18;
  for (double big_l = 1e6; big_l <= 1e30; big_l *= 100) {
    double r = ratio(big_l);
    EXPECT_LT(r, prev) << "L=" << big_l;
    prev = r;
  }
  EXPECT_LT(ratio(1e60), 0.01);  // the ratio really vanishes
}

TEST(ComplexityTest, SeparationCrossoverInLogSpace) {
  // With L = log2(n), the edge-coloring bound beats the barrier iff
  // L > (log2 L)^13 — a condition met only for astronomically large n,
  // exactly why the paper's separation is an asymptotic statement.
  auto beats = [](double big_l) {
    return big_l > std::pow(std::log2(big_l), 13.0);
  };
  EXPECT_FALSE(beats(1e3));
  EXPECT_FALSE(beats(1e9));
  EXPECT_FALSE(beats(1e18));
  EXPECT_TRUE(beats(1e30));
}

TEST(ComplexityTest, ModeledBaseRounds) {
  auto f = PolylogF(12.0);
  double n = 1 << 20;
  double k = SolveG(n, f);
  double rounds = ModeledBaseRounds(f, k, n);
  EXPECT_NEAR(rounds, std::pow(std::log2(n), 12.0 / 13.0) + 4, 1.5);
}

}  // namespace
}  // namespace treelocal
