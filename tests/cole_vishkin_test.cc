#include <gtest/gtest.h>

#include "src/algos/cole_vishkin.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/support/mathutil.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

// Parent array for a tree rooted at `root` (BFS orientation).
std::vector<int> RootAt(const Graph& tree, int root) {
  std::vector<int> parent(tree.NumNodes(), -1);
  std::vector<int> order = {root};
  std::vector<char> seen(tree.NumNodes(), 0);
  seen[root] = 1;
  for (size_t i = 0; i < order.size(); ++i) {
    int v = order[i];
    for (int u : tree.Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        parent[u] = v;
        order.push_back(u);
      }
    }
  }
  return parent;
}

void ExpectProper3Coloring(const Graph& g, const std::vector<int>& colors) {
  for (int e = 0; e < g.NumEdges(); ++e) {
    auto [u, v] = g.Endpoints(e);
    EXPECT_NE(colors[u], colors[v]) << "edge " << u << "-" << v;
  }
  for (int c : colors) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 2);
  }
}

TEST(ColeVishkinTest, PathIsProperly3Colored) {
  Graph g = Path(100);
  auto ids = DefaultIds(100, 1);
  auto result = ColeVishkin3Color(g, ids, RootAt(g, 0), 100LL * 100 * 100);
  ExpectProper3Coloring(g, result.colors);
}

TEST(ColeVishkinTest, StarIsProperly3Colored) {
  Graph g = Star(50);
  auto ids = DefaultIds(50, 2);
  auto result = ColeVishkin3Color(g, ids, RootAt(g, 0), 50LL * 50 * 50);
  ExpectProper3Coloring(g, result.colors);
}

TEST(ColeVishkinTest, SingletonColored) {
  Graph g = Path(1);
  auto result = ColeVishkin3Color(g, {5}, {-1}, 100);
  ASSERT_EQ(result.colors.size(), 1u);
  EXPECT_GE(result.colors[0], 0);
  EXPECT_LE(result.colors[0], 2);
}

TEST(ColeVishkinTest, EmptyForest) {
  Graph g = Graph::FromEdges(0, {});
  auto result = ColeVishkin3Color(g, {}, {}, 100);
  EXPECT_TRUE(result.colors.empty());
}

TEST(ColeVishkinTest, MultiComponentForest) {
  // Two disjoint paths.
  Graph g = Graph::FromEdges(8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6},
                                 {6, 7}});
  auto ids = DefaultIds(8, 3);
  std::vector<int> parent = {-1, 0, 1, 2, -1, 4, 5, 6};
  auto result = ColeVishkin3Color(g, ids, parent, 8LL * 8 * 8);
  ExpectProper3Coloring(g, result.colors);
}

TEST(ColeVishkinTest, RoundsAreLogStarPlusConstant) {
  // Round count = K + 7 where K = ColeVishkinIterations(id_space); K is the
  // log* term. Check against a generous constant on a big tree.
  const int n = 1 << 14;
  Graph g = UniformRandomTree(n, 5);
  auto ids = DefaultIds(n, 6);
  int64_t space = static_cast<int64_t>(n) * n * n;
  auto result = ColeVishkin3Color(g, ids, RootAt(g, 0), space);
  ExpectProper3Coloring(g, result.colors);
  EXPECT_LE(result.rounds, ColeVishkinIterations(space) + 8);
  EXPECT_LE(result.rounds, LogStar(static_cast<double>(space)) + 16);
}

TEST(ColeVishkinTest, IterationScheduleIsTiny) {
  // The whole point of log*: even astronomically large ID spaces converge
  // in a handful of iterations.
  EXPECT_LE(ColeVishkinIterations(int64_t{1} << 62), 6);
  EXPECT_GE(ColeVishkinIterations(int64_t{1} << 62), 3);
  EXPECT_LE(ColeVishkinIterations(1000), 5);
}

class CvFamilyTest : public ::testing::TestWithParam<TreeFamily> {};

TEST_P(CvFamilyTest, ProperOnAllFamilies) {
  for (int n : {32, 257}) {
    Graph g = MakeTree(GetParam(), n, 99);
    auto ids = DefaultIds(g.NumNodes(), 100);
    int64_t space =
        static_cast<int64_t>(g.NumNodes()) * g.NumNodes() * g.NumNodes();
    auto result = ColeVishkin3Color(g, ids, RootAt(g, 0), space);
    ExpectProper3Coloring(g, result.colors);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CvFamilyTest,
                         ::testing::ValuesIn(AllTreeFamilies()),
                         [](const auto& info) {
                           return TreeFamilyName(info.param);
                         });

}  // namespace
}  // namespace treelocal
