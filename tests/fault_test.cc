// Deterministic fault injection (src/support/fault.h) against the engine
// family's crash-safety contract: every injected fault ends in a clean
// structured FaultInjectedError, the engine stays reusable afterwards, and
// resuming from the last round-boundary checkpoint recovers a run that is
// bit-identical to the uninterrupted one. Also covers the structured
// non-convergence error (MaxRoundsExceededError) on every engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/local/network.h"
#include "src/local/parallel_network.h"
#include "src/local/reference_network.h"
#include "src/local/snapshot.h"
#include "src/support/fault.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using local::Algorithm;
using local::BatchNetwork;
using local::MaxRoundsExceededError;
using local::Network;
using local::NetworkOptions;
using local::NodeContext;
using local::ParallelNetwork;
using local::ReferenceNetwork;
using support::FaultInjectedError;
using support::FaultInjector;

constexpr int kMaxRounds = 1000;

// A workload that never halts: every node rebroadcasts a round-dependent
// word forever, so the digest chain keeps evolving and max_rounds always
// trips.
class NeverHaltAlg : public Algorithm {
 public:
  size_t StateBytes() const override { return 0; }
  void OnRound(NodeContext& ctx) override {
    ctx.Broadcast(local::Message::Of(7, ctx.round()));
  }
};

template <typename Engine>
std::string CheckpointBytes(const Engine& net) {
  std::ostringstream out;
  net.Checkpoint(out);
  return out.str();
}

template <typename Engine>
void ResumeBytes(Engine& net, const std::string& bytes) {
  std::istringstream in(bytes);
  net.Resume(in);
}

// Injects `fault` into a fresh engine built by `make(options)`, expects the
// structured error at the predicted site, then proves the engine object is
// still usable: a plain re-Run must reproduce the clean run's transcript.
template <typename MakeEngine>
void ExpectFaultThenReuse(const Graph& g, int k, FaultInjector& fault,
                          FaultInjectedError::Site want_site, int want_round,
                          MakeEngine make, const std::string& label) {
  SCOPED_TRACE(label);
  NetworkOptions clean_opt;
  auto clean = make(clean_opt);
  auto clean_alg = MakeRakeCompressAlgorithm(g, k);
  const int clean_rounds = clean->Run(*clean_alg, kMaxRounds);
  const uint64_t clean_digest = clean->last_digest();

  NetworkOptions opt;
  opt.fault = &fault;
  auto net = make(opt);
  auto alg = MakeRakeCompressAlgorithm(g, k);
  try {
    net->Run(*alg, kMaxRounds);
    FAIL() << "expected FaultInjectedError";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.site(), want_site);
    if (want_round >= 0) EXPECT_EQ(e.round(), want_round);
    EXPECT_TRUE(fault.fired());
  }
  // The injector stays fired, so the SAME engine object re-runs cleanly
  // from scratch and must land on the clean transcript.
  auto alg2 = MakeRakeCompressAlgorithm(g, k);
  EXPECT_EQ(net->Run(*alg2, kMaxRounds), clean_rounds);
  EXPECT_EQ(net->last_digest(), clean_digest);
  EXPECT_TRUE(net->finished());
}

TEST(FaultTest, RoundBoundaryKillIsStructuredAndEngineReusable) {
  const int n = 200, k = 2;
  const Graph g = UniformRandomTree(n, 11);
  const auto ids = DefaultIds(n, 12);
  auto run_case = [&](auto make, const std::string& label) {
    FaultInjector fault = FaultInjector::KillAtRoundBoundary(2);
    ExpectFaultThenReuse(g, k, fault,
                         FaultInjectedError::Site::kRoundBoundary, 2, make,
                         label);
  };
  run_case([&](const NetworkOptions& o) {
    return std::make_unique<Network>(g, ids, o);
  }, "Network");
  run_case([&](const NetworkOptions& o) {
    return std::make_unique<ParallelNetwork>(g, ids, 4, o);
  }, "ParallelNetwork T=4");
  run_case([&](const NetworkOptions& o) {
    return std::make_unique<ReferenceNetwork>(g, ids, o);
  }, "ReferenceNetwork");
}

TEST(FaultTest, MidRoundVisitThrowIsStructuredAndEngineReusable) {
  const int n = 200, k = 2;
  const Graph g = UniformRandomTree(n, 21);
  const auto ids = DefaultIds(n, 22);
  // Visit n + 5 lands in round 1 (round 0 visits all n live nodes); the
  // exact thrower under sharding is unspecified, the round is not.
  auto run_case = [&](auto make, const std::string& label) {
    FaultInjector fault = FaultInjector::ThrowAtVisit(n + 5);
    ExpectFaultThenReuse(g, k, fault, FaultInjectedError::Site::kVisit, 1,
                         make, label);
  };
  run_case([&](const NetworkOptions& o) {
    return std::make_unique<Network>(g, ids, o);
  }, "Network");
  run_case([&](const NetworkOptions& o) {
    return std::make_unique<ParallelNetwork>(g, ids, 4, o);
  }, "ParallelNetwork T=4");
  run_case([&](const NetworkOptions& o) {
    return std::make_unique<ReferenceNetwork>(g, ids, o);
  }, "ReferenceNetwork");
}

TEST(FaultTest, BatchEngineFaultsAndStaysReusable) {
  const int n = 120;
  const std::vector<int> ks = {2, 3};
  const Graph g = UniformRandomTree(n, 31);
  const auto ids = DefaultIds(n, 32);
  auto make_algs = [&](std::vector<std::unique_ptr<Algorithm>>& own) {
    std::vector<Algorithm*> ptrs;
    for (int k : ks) {
      own.push_back(MakeRakeCompressAlgorithm(g, k));
      ptrs.push_back(own.back().get());
    }
    return ptrs;
  };
  BatchNetwork clean(g, ids, 2, 2);
  std::vector<std::unique_ptr<Algorithm>> clean_algs;
  const std::vector<int> clean_rounds = clean.Run(make_algs(clean_algs),
                                                  kMaxRounds);

  for (int site = 0; site < 2; ++site) {
    SCOPED_TRACE(site == 0 ? "round boundary" : "mid-round visit");
    FaultInjector fault = site == 0 ? FaultInjector::KillAtRoundBoundary(1)
                                    : FaultInjector::ThrowAtVisit(2 * n + 3);
    NetworkOptions opt;
    opt.fault = &fault;
    BatchNetwork net(g, ids, 2, 2, opt);
    std::vector<std::unique_ptr<Algorithm>> algs;
    auto ptrs = make_algs(algs);
    EXPECT_THROW(net.Run(ptrs, kMaxRounds), FaultInjectedError);
    EXPECT_TRUE(fault.fired());
    std::vector<std::unique_ptr<Algorithm>> algs2;
    auto ptrs2 = make_algs(algs2);
    EXPECT_EQ(net.Run(ptrs2, kMaxRounds), clean_rounds);
    for (int b = 0; b < 2; ++b) {
      EXPECT_EQ(net.last_digest(b), clean.last_digest(b));
    }
  }
}

TEST(FaultTest, FromSeedIsDeterministic) {
  for (uint64_t seed = 0; seed < 32; ++seed) {
    FaultInjector a = FaultInjector::FromSeed(seed, 9, 400);
    FaultInjector b = FaultInjector::FromSeed(seed, 9, 400);
    EXPECT_EQ(a.kill_round(), b.kill_round());
    EXPECT_EQ(a.kill_visit(), b.kill_visit());
    // Exactly one of the two sites is armed.
    EXPECT_NE(a.kill_round() >= 0, a.kill_visit() >= 1);
  }
}

// The full recovery drill, seeded: checkpoint at every round boundary of a
// clean run, then for each seed crash a fresh run at a derived point, catch
// the structured error, resume from the last checkpoint at or before the
// crash, and require the recovered final transcript to be byte-identical
// to the uninterrupted one.
TEST(FaultTest, SeededCrashRecoveryIsBitIdentical) {
  const int n = 160, k = 2;
  const Graph g = UniformRandomTree(n, 47);
  const auto ids = DefaultIds(n, 48);

  // Clean pass: per-round checkpoints + totals. One engine, one algorithm
  // object, pausing at every successive boundary.
  Network clean(g, ids);
  auto clean_alg = MakeRakeCompressAlgorithm(g, k);
  std::vector<std::string> at_round;  // at_round[r]: checkpoint at round r
  int64_t total_visits = 0;
  int pause = 0;
  while (true) {
    clean.RunUntil(*clean_alg, kMaxRounds, pause);
    if (!clean.paused()) break;
    at_round.push_back(CheckpointBytes(clean));
    ++pause;
  }
  const int clean_rounds = static_cast<int>(clean.round_stats().size());
  // visits is exactly what FaultInjector::OnVisit counts (under wake
  // scheduling it can be smaller than active_nodes, the live count).
  for (const auto& rs : clean.round_stats()) total_visits += rs.visits;
  const std::string want = CheckpointBytes(clean);
  ASSERT_EQ(static_cast<int>(at_round.size()), clean_rounds);

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultInjector fault =
        FaultInjector::FromSeed(seed, clean_rounds, total_visits);
    NetworkOptions opt;
    opt.fault = &fault;
    Network net(g, ids, opt);
    auto alg = MakeRakeCompressAlgorithm(g, k);
    int crash_round = -1;
    try {
      net.Run(*alg, kMaxRounds);
      FAIL() << "in-range seeded fault did not fire";
    } catch (const FaultInjectedError& e) {
      crash_round = e.round();
    }
    ASSERT_GE(crash_round, 0);
    ASSERT_LT(crash_round, clean_rounds);
    // Recover on a fresh process-equivalent engine from the boundary
    // checkpoint at (for a boundary kill) or before (for a mid-round
    // throw) the crash point.
    Network recovered(g, ids);
    auto ralg = MakeRakeCompressAlgorithm(g, k);
    ResumeBytes(recovered, at_round[crash_round]);
    EXPECT_EQ(recovered.Run(*ralg, kMaxRounds), clean_rounds);
    EXPECT_EQ(CheckpointBytes(recovered), want);
  }
}

// Satellite: structured non-convergence. Hitting max_rounds is a typed
// error carrying the round reached, the live-node count, and the digest
// chain value — the triage trio — on every engine.
TEST(FaultTest, MaxRoundsErrorCarriesDiagnostics) {
  const int n = 64;
  const Graph g = UniformRandomTree(n, 77);
  const auto ids = DefaultIds(n, 78);
  NeverHaltAlg alg;

  // The expected digest after 5 rounds, from a paused clean engine.
  Network probe(g, ids);
  NeverHaltAlg probe_alg;
  probe.RunUntil(probe_alg, kMaxRounds, 5);
  ASSERT_TRUE(probe.paused());
  const uint64_t digest_at_5 = probe.last_digest();

  auto expect_diag = [&](auto run, const std::string& label) {
    SCOPED_TRACE(label);
    try {
      run();
      FAIL() << "expected MaxRoundsExceededError";
    } catch (const MaxRoundsExceededError& e) {
      EXPECT_EQ(e.round(), 5);
      EXPECT_EQ(e.active_nodes(), n);
      EXPECT_EQ(e.last_digest(), digest_at_5);
      EXPECT_NE(std::string(e.what()).find("max_rounds"), std::string::npos);
    }
  };
  expect_diag([&] {
    Network net(g, ids);
    net.Run(alg, 5);
  }, "Network");
  expect_diag([&] {
    ParallelNetwork net(g, ids, 4);
    net.Run(alg, 5);
  }, "ParallelNetwork");
  expect_diag([&] {
    ReferenceNetwork net(g, ids);
    net.Run(alg, 5);
  }, "ReferenceNetwork");

  // Batch: same structure; the digest is folded over per-instance chains,
  // so only the round/active diagnostics are pinned here.
  BatchNetwork batch(g, ids, 2);
  NeverHaltAlg alg2;
  try {
    batch.Run({&alg, &alg2}, 5);
    FAIL() << "expected MaxRoundsExceededError";
  } catch (const MaxRoundsExceededError& e) {
    EXPECT_EQ(e.round(), 5);
    EXPECT_EQ(e.active_nodes(), n);
  }
  // The old catch sites still work: the typed error is a runtime_error.
  Network net(g, ids);
  EXPECT_THROW(net.Run(alg, 5), std::runtime_error);
}

TEST(FaultTest, CorruptionHelpersBehave) {
  const std::string bytes = "treelocal snapshot bytes";
  EXPECT_EQ(support::TruncateBytes(bytes, 9), bytes.substr(0, 9));
  EXPECT_EQ(support::TruncateBytes(bytes, 1000), bytes);
  const std::string flipped = support::FlipBit(bytes, 8 * 3 + 2);
  EXPECT_EQ(flipped.size(), bytes.size());
  EXPECT_EQ(flipped[3], static_cast<char>(bytes[3] ^ 0x04));
  EXPECT_EQ(support::FlipBit(bytes, 8 * 3 + 2).compare(flipped), 0);
}

}  // namespace
}  // namespace treelocal
