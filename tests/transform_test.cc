// End-to-end tests for the two transformation pipelines:
//   Theorem 12 (node problems on trees)  — SolveNodeProblemOnTree
//   Theorem 15 (edge problems, arboricity) — SolveEdgeProblemBoundedArboricity
// Checks solution validity (in the node-edge-checkability formalism AND
// against raw combinatorial oracles), and the round structure promised by
// the theorems.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/complexity.h"
#include "src/core/transform_edge.h"
#include "src/core/transform_node.h"
#include "src/graph/generators.h"
#include "src/problems/coloring.h"
#include "src/problems/edge_coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/support/mathutil.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

int64_t IdSpace(int n) { return static_cast<int64_t>(n) * n * n; }

struct TreeCase {
  TreeFamily family;
  int n;
  int k;
};

std::string TreeCaseName(const ::testing::TestParamInfo<TreeCase>& info) {
  return TreeFamilyName(info.param.family) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k);
}

class Thm12Test : public ::testing::TestWithParam<TreeCase> {
 protected:
  void SetUp() override {
    tree_ = MakeTree(GetParam().family, GetParam().n, 7);
    ids_ = DefaultIds(tree_.NumNodes(), 8);
  }
  Graph tree_;
  std::vector<int64_t> ids_;
};

TEST_P(Thm12Test, MisValid) {
  MisProblem mis;
  auto result = SolveNodeProblemOnTree(mis, tree_, ids_,
                                       IdSpace(tree_.NumNodes()),
                                       GetParam().k);
  EXPECT_TRUE(result.valid) << result.why;
  EXPECT_TRUE(MisProblem::IsMaximalIndependentSet(
      tree_, MisProblem::ExtractSet(tree_, result.labeling)));
}

TEST_P(Thm12Test, DegPlusOneColoringValid) {
  ColoringProblem problem(ColoringProblem::Mode::kDegPlusOne, 0);
  auto result = SolveNodeProblemOnTree(problem, tree_, ids_,
                                       IdSpace(tree_.NumNodes()),
                                       GetParam().k);
  EXPECT_TRUE(result.valid) << result.why;
  EXPECT_TRUE(problem.IsProperlyColored(
      tree_, ColoringProblem::ExtractColors(tree_, result.labeling)));
}

TEST_P(Thm12Test, DeltaPlusOneColoringValid) {
  ColoringProblem problem(ColoringProblem::Mode::kDeltaPlusOne,
                          tree_.MaxDegree());
  auto result = SolveNodeProblemOnTree(problem, tree_, ids_,
                                       IdSpace(tree_.NumNodes()),
                                       GetParam().k);
  EXPECT_TRUE(result.valid) << result.why;
}

TEST_P(Thm12Test, RoundStructure) {
  MisProblem mis;
  const int k = GetParam().k;
  auto result =
      SolveNodeProblemOnTree(mis, tree_, ids_, IdSpace(tree_.NumNodes()), k);
  // Decomposition: 3 rounds per iteration, <= ceil(log_k n) + 1 iterations.
  EXPECT_LE(result.rounds_decomposition,
            3 * (CeilLogBase(tree_.NumNodes(), k) + 1));
  // Base phase ran on a degree-<= k graph (Lemma 10).
  EXPECT_LE(result.base_stats.underlying_max_degree, k);
  // Gather: 2*ecc+1 with ecc <= diameter <= 4(log_k n + 1) + 2 (Lemma 11).
  double logk_n = LogBase(std::max(2.0, double(tree_.NumNodes())), k);
  EXPECT_LE(result.rounds_gather, 2 * (4 * (logk_n + 1) + 2) + 1);
  EXPECT_EQ(result.rounds_total, result.rounds_decomposition +
                                     result.rounds_base +
                                     result.rounds_gather);
  EXPECT_EQ(result.num_compressed + result.num_raked, tree_.NumNodes());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Thm12Test,
    ::testing::Values(TreeCase{TreeFamily::kPath, 512, 2},
                      TreeCase{TreeFamily::kStar, 512, 3},
                      TreeCase{TreeFamily::kBalanced3, 1093, 2},
                      TreeCase{TreeFamily::kBalanced8, 512, 4},
                      TreeCase{TreeFamily::kUniform, 1024, 2},
                      TreeCase{TreeFamily::kUniform, 1024, 5},
                      TreeCase{TreeFamily::kRecursive, 777, 3},
                      TreeCase{TreeFamily::kCaterpillar, 800, 2},
                      TreeCase{TreeFamily::kBinary, 1023, 2}),
    TreeCaseName);

struct ArbCase {
  int n;
  int a;
  int k;
  uint64_t seed;
  bool grid = false;
};

std::string ArbCaseName(const ::testing::TestParamInfo<ArbCase>& info) {
  const ArbCase& c = info.param;
  return std::string(c.grid ? "grid" : "union") + "_n" + std::to_string(c.n) +
         "_a" + std::to_string(c.a) + "_k" + std::to_string(c.k);
}

class Thm15Test : public ::testing::TestWithParam<ArbCase> {
 protected:
  void SetUp() override {
    const ArbCase& c = GetParam();
    graph_ = c.grid ? Grid(c.n / 32, 32) : ForestUnion(c.n, c.a, c.seed);
    ids_ = DefaultIds(graph_.NumNodes(), c.seed + 100);
  }
  Graph graph_;
  std::vector<int64_t> ids_;
};

TEST_P(Thm15Test, MatchingValid) {
  MatchingProblem mm;
  const ArbCase& c = GetParam();
  auto result = SolveEdgeProblemBoundedArboricity(
      mm, graph_, ids_, IdSpace(graph_.NumNodes()), c.a, c.k);
  EXPECT_TRUE(result.valid) << result.why;
  EXPECT_TRUE(MatchingProblem::IsMaximalMatching(
      graph_, MatchingProblem::ExtractMatching(graph_, result.labeling)));
}

TEST_P(Thm15Test, EdgeDegreePlusOneColoringValid) {
  EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                              graph_.MaxDegree());
  const ArbCase& c = GetParam();
  auto result = SolveEdgeProblemBoundedArboricity(
      problem, graph_, ids_, IdSpace(graph_.NumNodes()), c.a, c.k);
  EXPECT_TRUE(result.valid) << result.why;
  auto colors = EdgeColoringProblem::ExtractColors(graph_, result.labeling);
  EXPECT_TRUE(problem.IsProperEdgeColoring(graph_, colors));
  for (int e = 0; e < graph_.NumEdges(); ++e) {
    EXPECT_LE(colors[e], graph_.EdgeDegree(e) + 1);
  }
}

TEST_P(Thm15Test, TwoDeltaMinusOneColoringValid) {
  EdgeColoringProblem problem(EdgeColoringProblem::Mode::kTwoDeltaMinusOne,
                              graph_.MaxDegree());
  const ArbCase& c = GetParam();
  auto result = SolveEdgeProblemBoundedArboricity(
      problem, graph_, ids_, IdSpace(graph_.NumNodes()), c.a, c.k);
  EXPECT_TRUE(result.valid) << result.why;
}

TEST_P(Thm15Test, RoundStructure) {
  MatchingProblem mm;
  const ArbCase& c = GetParam();
  auto result = SolveEdgeProblemBoundedArboricity(
      mm, graph_, ids_, IdSpace(graph_.NumNodes()), c.a, c.k);
  EXPECT_LE(result.rounds_decomposition,
            2 * DecompositionIterationBound(graph_.NumNodes(), c.a, c.k));
  EXPECT_LE(result.base_stats.underlying_max_degree, c.k);  // Lemma 14
  // Star stages: 2 rounds per (i,j), 6a stages.
  EXPECT_EQ(result.rounds_gather, 2 * 6 * c.a);
  EXPECT_EQ(result.rounds_total,
            result.rounds_decomposition + result.rounds_base +
                result.rounds_split + result.rounds_gather);
  EXPECT_EQ(result.num_typical + result.num_atypical, graph_.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Thm15Test,
    ::testing::Values(ArbCase{512, 1, 5, 1}, ArbCase{512, 1, 16, 2},
                      ArbCase{512, 2, 10, 3}, ArbCase{1024, 3, 15, 4},
                      ArbCase{1024, 2, 32, 5}, ArbCase{2048, 1, 8, 6},
                      ArbCase{1024, 2, 10, 7, /*grid=*/true}),
    ArbCaseName);

// Hub-heavy workloads (max degree ~ n, arboricity <= a): the cases where
// the atypical-edge machinery (forest split + star stages) actually fires.
class Thm15HubTest : public ::testing::TestWithParam<int> {};

TEST_P(Thm15HubTest, MatchingOnStarUnion) {
  int a = GetParam();
  Graph g = StarUnion(1024, a, 40 + a);
  auto ids = DefaultIds(g.NumNodes(), 41);
  MatchingProblem mm;
  auto result = SolveEdgeProblemBoundedArboricity(
      mm, g, ids, IdSpace(g.NumNodes()), a, 5 * a);
  EXPECT_TRUE(result.valid) << result.why;
  EXPECT_GT(result.num_atypical, 0) << "workload must exercise E1";
  EXPECT_TRUE(MatchingProblem::IsMaximalMatching(
      g, MatchingProblem::ExtractMatching(g, result.labeling)));
}

TEST_P(Thm15HubTest, EdgeColoringOnStarUnion) {
  int a = GetParam();
  Graph g = StarUnion(1024, a, 50 + a);
  auto ids = DefaultIds(g.NumNodes(), 51);
  EdgeColoringProblem ec(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                         g.MaxDegree());
  auto result = SolveEdgeProblemBoundedArboricity(
      ec, g, ids, IdSpace(g.NumNodes()), a, 5 * a);
  EXPECT_TRUE(result.valid) << result.why;
  auto colors = EdgeColoringProblem::ExtractColors(g, result.labeling);
  EXPECT_TRUE(ec.IsProperEdgeColoring(g, colors));
}

TEST_P(Thm15HubTest, EdgeColoringOnHubbedForest) {
  int a = GetParam();
  Graph g = HubbedForest(1024, a, 60 + a);
  auto ids = DefaultIds(g.NumNodes(), 61);
  EdgeColoringProblem ec(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                         g.MaxDegree());
  auto result = SolveEdgeProblemBoundedArboricity(
      ec, g, ids, IdSpace(g.NumNodes()), a, 5 * a);
  EXPECT_TRUE(result.valid) << result.why;
}

INSTANTIATE_TEST_SUITE_P(Arboricities, Thm15HubTest,
                         ::testing::Values(1, 2, 3, 5));

// Theorem 15 on trees (a = 1) reproduces the Section 5.2 maximal matching
// result; sanity-check all tree families.
class Thm15TreeTest : public ::testing::TestWithParam<TreeFamily> {};

TEST_P(Thm15TreeTest, MatchingOnTreeFamilies) {
  Graph tree = MakeTree(GetParam(), 600, 3);
  auto ids = DefaultIds(tree.NumNodes(), 4);
  MatchingProblem mm;
  auto result = SolveEdgeProblemBoundedArboricity(
      mm, tree, ids, IdSpace(tree.NumNodes()), 1, 5);
  EXPECT_TRUE(result.valid) << result.why;
}

TEST_P(Thm15TreeTest, EdgeColoringOnTreeFamilies) {
  Graph tree = MakeTree(GetParam(), 600, 5);
  auto ids = DefaultIds(tree.NumNodes(), 6);
  EdgeColoringProblem ec(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                         tree.MaxDegree());
  auto result = SolveEdgeProblemBoundedArboricity(
      ec, tree, ids, IdSpace(tree.NumNodes()), 1, 5);
  EXPECT_TRUE(result.valid) << result.why;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, Thm15TreeTest,
                         ::testing::ValuesIn(AllTreeFamilies()),
                         [](const auto& info) {
                           return TreeFamilyName(info.param);
                         });

// Determinism of the full pipelines.
TEST(TransformDeterminism, Thm12SameInputsSameTranscript) {
  Graph tree = UniformRandomTree(400, 21);
  auto ids = DefaultIds(400, 22);
  MisProblem mis;
  auto r1 = SolveNodeProblemOnTree(mis, tree, ids, IdSpace(400), 3);
  auto r2 = SolveNodeProblemOnTree(mis, tree, ids, IdSpace(400), 3);
  EXPECT_EQ(r1.rounds_total, r2.rounds_total);
  for (int e = 0; e < tree.NumEdges(); ++e) {
    EXPECT_EQ(r1.labeling.GetSlot(e, 0), r2.labeling.GetSlot(e, 0));
    EXPECT_EQ(r1.labeling.GetSlot(e, 1), r2.labeling.GetSlot(e, 1));
  }
}

// The batched k-sweep entry point must match the solo pipeline per k, field
// for field — it is what bench_k_ablation's Thm12 sweep routes through.
TEST(TransformDeterminism, Thm12BatchMatchesSoloPerK) {
  Graph tree = UniformRandomTree(350, 25);
  auto ids = DefaultIds(350, 26);
  MisProblem mis;
  const std::vector<int> ks = {2, 3, 4, 8, 16, 64};
  auto batched = SolveNodeProblemOnTreeBatch(mis, tree, ids, IdSpace(350), ks);
  ASSERT_EQ(batched.size(), ks.size());
  for (size_t b = 0; b < ks.size(); ++b) {
    auto solo = SolveNodeProblemOnTree(mis, tree, ids, IdSpace(350), ks[b]);
    EXPECT_EQ(batched[b].k, solo.k);
    EXPECT_TRUE(batched[b].valid);
    EXPECT_EQ(batched[b].rounds_total, solo.rounds_total);
    EXPECT_EQ(batched[b].rounds_decomposition, solo.rounds_decomposition);
    EXPECT_EQ(batched[b].rounds_base, solo.rounds_base);
    EXPECT_EQ(batched[b].rounds_gather, solo.rounds_gather);
    EXPECT_EQ(batched[b].engine_messages, solo.engine_messages);
    EXPECT_EQ(batched[b].rake_compress.iteration, solo.rake_compress.iteration);
    EXPECT_EQ(batched[b].rake_compress.compressed,
              solo.rake_compress.compressed);
    EXPECT_EQ(batched[b].rake_compress.round_stats,
              solo.rake_compress.round_stats);
    for (int e = 0; e < tree.NumEdges(); ++e) {
      ASSERT_EQ(batched[b].labeling.GetSlot(e, 0), solo.labeling.GetSlot(e, 0));
      ASSERT_EQ(batched[b].labeling.GetSlot(e, 1), solo.labeling.GetSlot(e, 1));
    }
  }
  // Empty inputs: no ks is a no-op; an empty tree still validates ks.
  EXPECT_TRUE(
      SolveNodeProblemOnTreeBatch(mis, tree, ids, IdSpace(350), {}).empty());
  Graph empty = Graph::FromEdges(0, {});
  EXPECT_THROW(SolveNodeProblemOnTreeBatch(mis, empty, {}, 8, {1}),
               std::invalid_argument);
  EXPECT_EQ(SolveNodeProblemOnTreeBatch(mis, empty, {}, 8, {2, 4}).size(), 2u);
}

TEST(TransformDeterminism, Thm15SameInputsSameTranscript) {
  Graph g = ForestUnion(300, 2, 23);
  auto ids = DefaultIds(300, 24);
  MatchingProblem mm;
  auto r1 = SolveEdgeProblemBoundedArboricity(mm, g, ids, IdSpace(300), 2, 10);
  auto r2 = SolveEdgeProblemBoundedArboricity(mm, g, ids, IdSpace(300), 2, 10);
  EXPECT_EQ(r1.rounds_total, r2.rounds_total);
  for (int e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(r1.labeling.GetSlot(e, 0), r2.labeling.GetSlot(e, 0));
  }
}

// Many random seeds, the chosen k = g(n): a light stress suite.
class TransformStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransformStress, MisWithChosenK) {
  uint64_t seed = GetParam();
  int n = 200 + static_cast<int>(seed % 5) * 150;
  Graph tree = UniformRandomTree(n, seed);
  auto ids = DefaultIds(n, seed + 1);
  int k = ChooseK(n, QuadraticF());
  MisProblem mis;
  auto result = SolveNodeProblemOnTree(mis, tree, ids, IdSpace(n), k);
  EXPECT_TRUE(result.valid) << result.why;
}

TEST_P(TransformStress, MatchingWithChosenK) {
  uint64_t seed = GetParam();
  int n = 200 + static_cast<int>(seed % 5) * 150;
  Graph tree = UniformRandomTree(n, seed + 50);
  auto ids = DefaultIds(n, seed + 51);
  int k = std::max(5, ChooseK(n, QuadraticF()));
  MatchingProblem mm;
  auto result =
      SolveEdgeProblemBoundedArboricity(mm, tree, ids, IdSpace(n), 1, k);
  EXPECT_TRUE(result.valid) << result.why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformStress,
                         ::testing::Range(uint64_t{0}, uint64_t{16}));

}  // namespace
}  // namespace treelocal
