#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

TEST(BfsTest, PathDistances) {
  Graph g = Path(6);
  auto dist = BfsDistances(g, 0);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsTest, DisconnectedUnreachable) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(ComponentsTest, SingleComponent) {
  int num = 0;
  auto comp = ConnectedComponents(Path(10), &num);
  EXPECT_EQ(num, 1);
  for (int c : comp) EXPECT_EQ(c, 0);
}

TEST(ComponentsTest, MultipleComponents) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {2, 3}});
  int num = 0;
  auto comp = ConnectedComponents(g, &num);
  EXPECT_EQ(num, 4);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(ComponentsTest, MaskedComponentsSplitByMask) {
  // Path 0-1-2-3-4 with node 2 masked out: two components.
  Graph g = Path(5);
  std::vector<char> mask = {1, 1, 0, 1, 1};
  int num = 0;
  auto comp = MaskedComponents(g, mask, &num);
  EXPECT_EQ(num, 2);
  EXPECT_EQ(comp[2], -1);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(ComponentsTest, MaskedTreeComponentDiameters) {
  Graph g = Path(10);
  std::vector<char> mask(10, 1);
  mask[4] = 0;
  int num = 0;
  auto comp = MaskedComponents(g, mask, &num);
  auto diam = MaskedTreeComponentDiameters(g, mask, comp, num);
  ASSERT_EQ(num, 2);
  EXPECT_EQ(diam[comp[0]], 3);  // nodes 0..3
  EXPECT_EQ(diam[comp[9]], 4);  // nodes 5..9
}

TEST(ForestTest, TreeIsForest) {
  EXPECT_TRUE(IsForest(Path(10)));
  EXPECT_TRUE(IsTree(Path(10)));
}

TEST(ForestTest, CycleIsNotForest) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(IsForest(g));
  EXPECT_FALSE(IsTree(g));
}

TEST(ForestTest, DisconnectedForestIsNotTree) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(IsForest(g));
  EXPECT_FALSE(IsTree(g));
}

TEST(ForestCoverTest, TreeNeedsOneForest) {
  EXPECT_TRUE(GreedyForestCover(UniformRandomTree(100, 3), 1));
}

TEST(ForestCoverTest, TriangleNeedsTwo) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(GreedyForestCover(g, 1));
  EXPECT_TRUE(GreedyForestCover(g, 2));
}

TEST(LeadersTest, LeaderIsMaxKeyNode) {
  Graph g = Path(5);
  std::vector<char> mask(5, 1);
  std::vector<int64_t> key = {10, 50, 20, 40, 30};
  auto leaders = MaskedComponentLeaders(g, mask, key);
  ASSERT_EQ(leaders.size(), 1u);
  EXPECT_EQ(leaders[0].leader, 1);
  EXPECT_EQ(leaders[0].eccentricity, 3);  // node 1 -> node 4
  EXPECT_EQ(leaders[0].nodes.size(), 5u);
}

TEST(LeadersTest, PerComponentLeaders) {
  Graph g = Path(6);
  std::vector<char> mask = {1, 1, 0, 1, 1, 1};
  std::vector<int64_t> key = {1, 2, 3, 4, 5, 6};
  auto leaders = MaskedComponentLeaders(g, mask, key);
  ASSERT_EQ(leaders.size(), 2u);
  // Components {0,1} and {3,4,5}.
  EXPECT_EQ(leaders[0].leader, 1);
  EXPECT_EQ(leaders[1].leader, 5);
  EXPECT_EQ(leaders[1].eccentricity, 2);
}

TEST(LeadersTest, RandomTreeEccentricityWithinDiameter) {
  Graph g = UniformRandomTree(300, 77);
  std::vector<char> mask(300, 1);
  auto ids = DefaultIds(300, 1);
  auto leaders = MaskedComponentLeaders(g, mask, ids);
  ASSERT_EQ(leaders.size(), 1u);
  int num = 0;
  auto comp = MaskedComponents(g, mask, &num);
  auto diam = MaskedTreeComponentDiameters(g, mask, comp, num);
  EXPECT_LE(leaders[0].eccentricity, diam[0]);
  EXPECT_GE(2 * leaders[0].eccentricity + 1, diam[0]);
}

}  // namespace
}  // namespace treelocal
