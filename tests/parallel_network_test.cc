// Determinism suite for the sharded engines: ParallelNetwork (worklist
// shards) and ParallelBatchNetwork (instance shards) must be bit-identical
// to the serial engines — outputs, executed rounds, message counts, and
// per-round RoundStats — for every thread count, across uneven worklist
// sizes (n not divisible by T, n < T, empty shards) and mid-run halting
// patterns that reshuffle the shard boundaries every round. Plus the
// NetworkOptions::relabel bit-identity contract, engine reuse, exception
// propagation out of sharded rounds, and the pipeline-level parallel
// overloads (rake-compress, Linial, Cole-Vishkin, distributed sweep,
// Theorem 12).
#include "src/local/parallel_network.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "src/algos/cole_vishkin.h"
#include "src/algos/distributed_sweep.h"
#include "src/algos/linial.h"
#include "src/core/rake_compress.h"
#include "src/core/transform_node.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/problems/mis.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using local::Algorithm;
using local::Message;
using local::Network;
using local::NetworkOptions;
using local::NodeContext;
using local::ParallelBatchNetwork;
using local::ParallelNetwork;
using local::RoundStats;

// Message-dependent transcript with staggered, id-dependent halts (nodes
// drop out mid-run, so shard boundaries move every round) and a
// last-write-wins double-send to exercise the per-shard counter dedup.
class DigestAlgorithm : public Algorithm {
 public:
  explicit DigestAlgorithm(int n) : digest_(n, 0) {}

  void OnRound(NodeContext& ctx) override {
    const int v = ctx.node();
    uint64_t d = digest_[v] * 1000003ULL + 17;
    d += static_cast<uint64_t>(ctx.id());
    for (int p = 0; p < ctx.degree(); ++p) {
      const Message& m = ctx.Recv(p);
      if (m.present()) {
        d = d * 31 + static_cast<uint64_t>(m.word0) +
            3 * static_cast<uint64_t>(m.word1) + m.size;
      }
      d += static_cast<uint64_t>(ctx.neighbor_id(p));
    }
    digest_[v] = d;
    const int halt_round = static_cast<int>(ctx.id() % 11) + 1;
    if (ctx.round() >= halt_round) {
      ctx.Halt();
      return;
    }
    ctx.Broadcast(Message::Of(static_cast<int64_t>(d & 0x7fffffff), v));
    if (ctx.degree() > 0) {
      ctx.Send(0, Message::Of(static_cast<int64_t>(d % 97)));
    }
  }

  std::vector<uint64_t> digest_;
};

// Leaves peel off round by round: the worklist collapses from the outside
// in, the hard case for the stitched compaction.
class PeelLeaves : public Algorithm {
 public:
  explicit PeelLeaves(const Graph& g)
      : live_degree_(g.NumNodes()), mark_round_(g.NumNodes(), -1) {
    for (int v = 0; v < g.NumNodes(); ++v) live_degree_[v] = g.Degree(v);
  }

  void OnRound(NodeContext& ctx) override {
    const int v = ctx.node();
    for (int p = 0; p < ctx.degree(); ++p) {
      if (ctx.Recv(p).present()) --live_degree_[v];
    }
    if (live_degree_[v] <= 1) {
      mark_round_[v] = ctx.round();
      ctx.Broadcast(Message::Of(1));
      ctx.Halt();
    }
  }

  std::vector<int> live_degree_;
  std::vector<int> mark_round_;
};

struct RunOutcome {
  int rounds = 0;
  int64_t messages = 0;
  std::vector<RoundStats> stats;
};

template <typename Engine, typename Alg>
RunOutcome RunOn(Engine& net, Alg& alg, int max_rounds) {
  RunOutcome out;
  out.rounds = net.Run(alg, max_rounds);
  out.messages = net.messages_delivered();
  out.stats = net.round_stats();
  return out;
}

// The T-sweep stress: serial Network vs ParallelNetwork at every T, same
// algorithm state and transcript required.
template <typename AlgFactory>
void ExpectParallelMatchesSerial(const Graph& g,
                                 const std::vector<int64_t>& ids,
                                 AlgFactory make_alg, int max_rounds) {
  auto serial_alg = make_alg();
  Network serial(g, ids);
  const RunOutcome want = RunOn(serial, *serial_alg, max_rounds);
  for (int threads : {1, 2, 3, 8}) {
    auto par_alg = make_alg();
    ParallelNetwork par(g, ids, threads);
    const RunOutcome got = RunOn(par, *par_alg, max_rounds);
    EXPECT_EQ(got.rounds, want.rounds) << "T=" << threads;
    EXPECT_EQ(got.messages, want.messages) << "T=" << threads;
    EXPECT_EQ(got.stats, want.stats) << "T=" << threads;
    EXPECT_EQ(par_alg->State(), serial_alg->State()) << "T=" << threads;
  }
}

struct DigestRunner : DigestAlgorithm {
  using DigestAlgorithm::DigestAlgorithm;
  const std::vector<uint64_t>& State() const { return digest_; }
};
struct PeelRunner : PeelLeaves {
  using PeelLeaves::PeelLeaves;
  const std::vector<int>& State() const { return mark_round_; }
};

TEST(ParallelNetworkTest, DigestStressUnevenSizes) {
  // n deliberately not divisible by the swept thread counts, including
  // n < T (empty shards) and n == 1.
  for (int n : {1, 2, 3, 5, 7, 97, 230, 1001}) {
    Graph g = UniformRandomTree(n, 3000 + n);
    auto ids = DefaultIds(n, 3100 + n);
    ExpectParallelMatchesSerial(
        g, ids, [&] { return std::make_unique<DigestRunner>(n); }, 64);
  }
}

TEST(ParallelNetworkTest, PeelStressMidRunHalts) {
  for (int n : {3, 41, 97, 513}) {
    Graph g = UniformRandomTree(n, 3200 + n);
    auto ids = DefaultIds(n, 3300 + n);
    ExpectParallelMatchesSerial(
        g, ids, [&] { return std::make_unique<PeelRunner>(g); }, 4 * n + 8);
  }
  // Star and path: the extreme degree distributions (one shard holds the
  // hub; per-shard work is maximally skewed).
  for (int n : {2, 50}) {
    for (int shape = 0; shape < 2; ++shape) {
      Graph g = shape == 0 ? Star(n) : Path(n);
      auto ids = DefaultIds(n, 3400 + n + shape);
      ExpectParallelMatchesSerial(
          g, ids, [&] { return std::make_unique<PeelRunner>(g); }, 4 * n + 8);
    }
  }
}

TEST(ParallelNetworkTest, RakeCompressBitIdenticalAllT) {
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 100 + trial * 157;
    Graph tree = UniformRandomTree(n, 3500 + trial);
    auto ids = DefaultIds(n, 3600 + trial);
    for (int k : {2, 8}) {
      RakeCompressResult want = RunRakeCompress(tree, ids, k);
      for (int threads : {1, 2, 4, 8}) {
        ParallelNetwork net(tree, ids, threads);
        RakeCompressResult got = RunRakeCompress(net, k);
        EXPECT_EQ(got.iteration, want.iteration);
        EXPECT_EQ(got.compressed, want.compressed);
        EXPECT_EQ(got.engine_rounds, want.engine_rounds);
        EXPECT_EQ(got.messages, want.messages);
        EXPECT_EQ(got.round_stats, want.round_stats);
      }
    }
  }
}

TEST(ParallelNetworkTest, ReuseMatchesFreshEngine) {
  const int n = 200;
  Graph g = UniformRandomTree(n, 77);
  auto ids = DefaultIds(n, 78);
  ParallelNetwork reused(g, ids, 4);

  DigestRunner first(n);
  const RunOutcome a = RunOn(reused, first, 64);
  {
    PeelRunner peel(g);  // dirty the mailboxes with a different transcript
    reused.Run(peel, 4 * n + 8);
  }
  DigestRunner again(n);
  const RunOutcome b = RunOn(reused, again, 64);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(first.digest_, again.digest_);
}

TEST(ParallelNetworkTest, MaxRoundsThrowsAndEngineSurvives) {
  class Forever : public Algorithm {
   public:
    void OnRound(NodeContext& ctx) override { ctx.Broadcast(Message::Of(1)); }
  };
  const int n = 64;
  Graph g = UniformRandomTree(n, 11);
  auto ids = DefaultIds(n, 12);
  ParallelNetwork net(g, ids, 3);
  Forever forever;
  EXPECT_THROW(net.Run(forever, 5), std::runtime_error);
  // The engine re-initializes per Run: a normal algorithm still works.
  DigestRunner digest(n);
  Network serial(g, ids);
  DigestRunner serial_digest(n);
  EXPECT_EQ(net.Run(digest, 64), serial.Run(serial_digest, 64));
  EXPECT_EQ(digest.digest_, serial_digest.digest_);
}

TEST(ParallelNetworkTest, OnRoundExceptionPropagates) {
  class ThrowsAtRound2 : public Algorithm {
   public:
    void OnRound(NodeContext& ctx) override {
      if (ctx.round() == 2 && ctx.node() % 37 == 5) {
        throw std::domain_error("algorithm failure");
      }
      ctx.Broadcast(Message::Of(ctx.round()));
      if (ctx.round() >= 6) ctx.Halt();
    }
  };
  const int n = 120;
  Graph g = UniformRandomTree(n, 21);
  auto ids = DefaultIds(n, 22);
  ParallelNetwork net(g, ids, 4);
  ThrowsAtRound2 bad;
  EXPECT_THROW(net.Run(bad, 100), std::domain_error);
  DigestRunner ok(n);
  EXPECT_GT(net.Run(ok, 64), 0);  // usable after the aborted run
}

// NetworkOptions::relabel: the BFS-laid-out engine must be transcript-
// identical to the default layout, serially and sharded.
TEST(ParallelNetworkTest, RelabelBitIdentical) {
  NetworkOptions relabel;
  relabel.relabel = true;
  for (int n : {1, 2, 57, 400}) {
    Graph g = UniformRandomTree(n, 4000 + n);
    auto ids = DefaultIds(n, 4100 + n);

    DigestRunner plain_alg(n);
    Network plain(g, ids);
    const RunOutcome want = RunOn(plain, plain_alg, 64);

    DigestRunner relabeled_alg(n);
    Network relabeled(g, ids, relabel);
    const RunOutcome got = RunOn(relabeled, relabeled_alg, 64);
    EXPECT_EQ(got.rounds, want.rounds);
    EXPECT_EQ(got.messages, want.messages);
    EXPECT_EQ(got.stats, want.stats);
    EXPECT_EQ(relabeled_alg.digest_, plain_alg.digest_);

    for (int threads : {2, 3}) {
      DigestRunner par_alg(n);
      ParallelNetwork par(g, ids, threads, relabel);
      const RunOutcome par_got = RunOn(par, par_alg, 64);
      EXPECT_EQ(par_got.rounds, want.rounds) << "T=" << threads;
      EXPECT_EQ(par_got.messages, want.messages) << "T=" << threads;
      EXPECT_EQ(par_got.stats, want.stats) << "T=" << threads;
      EXPECT_EQ(par_alg.digest_, plain_alg.digest_) << "T=" << threads;
    }
  }
}

TEST(ParallelNetworkTest, RelabelRakeCompressOnForestUnion) {
  // Multi-component graphs exercise the BFS restart path.
  NetworkOptions relabel;
  relabel.relabel = true;
  Graph g = ForestUnion(300, 1, 31);  // a = 1: a real (multi-component) forest
  auto ids = DefaultIds(g.NumNodes(), 32);
  RakeCompressResult want = RunRakeCompress(g, ids, 4);
  Network net(g, ids, relabel);
  RakeCompressResult got = RunRakeCompress(net, 4);
  EXPECT_EQ(got.iteration, want.iteration);
  EXPECT_EQ(got.compressed, want.compressed);
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.round_stats, want.round_stats);
}

// ParallelBatchNetwork: every instance's transcript must equal its solo
// Network run, for every shard count, with instances dropping out at
// different rounds (uneven k mix).
TEST(ParallelNetworkTest, ParallelBatchBitIdenticalAllT) {
  const int n = 257;
  Graph tree = UniformRandomTree(n, 5000);
  auto ids = DefaultIds(n, 5001);
  const std::vector<int> ks = {2, 3, 2, 16, 5};  // dropout at different rounds
  std::vector<RakeCompressResult> want;
  for (int k : ks) want.push_back(RunRakeCompress(tree, ids, k));
  for (int threads : {1, 2, 3, 8}) {
    ParallelBatchNetwork net(tree, ids, static_cast<int>(ks.size()), threads);
    std::vector<RakeCompressResult> got = RunRakeCompressBatch(net, ks);
    for (size_t b = 0; b < ks.size(); ++b) {
      EXPECT_EQ(got[b].iteration, want[b].iteration) << "T=" << threads;
      EXPECT_EQ(got[b].compressed, want[b].compressed) << "T=" << threads;
      EXPECT_EQ(got[b].engine_rounds, want[b].engine_rounds) << "T=" << threads;
      EXPECT_EQ(got[b].messages, want[b].messages) << "T=" << threads;
      EXPECT_EQ(got[b].round_stats, want[b].round_stats) << "T=" << threads;
    }
  }
}

TEST(ParallelNetworkTest, ParallelBatchReuse) {
  const int n = 120;
  Graph tree = UniformRandomTree(n, 5100);
  auto ids = DefaultIds(n, 5101);
  const std::vector<int> ks = {2, 4, 8};
  ParallelBatchNetwork net(tree, ids, 3, 2);
  std::vector<RakeCompressResult> first = RunRakeCompressBatch(net, ks);
  std::vector<RakeCompressResult> second = RunRakeCompressBatch(net, ks);
  for (size_t b = 0; b < ks.size(); ++b) {
    EXPECT_EQ(first[b].iteration, second[b].iteration);
    EXPECT_EQ(first[b].messages, second[b].messages);
    EXPECT_EQ(first[b].round_stats, second[b].round_stats);
  }
}

// Pipeline-level parallel overloads: same results as the serial entry
// points (they differ only in the engine they construct).
TEST(ParallelNetworkTest, PipelineOverloadsMatchSerial) {
  const int n = 150;
  Graph g = UniformRandomTree(n, 6000);
  auto ids = DefaultIds(n, 6001);
  const int64_t space = int64_t{n} * n * n;

  LinialResult lin = RunLinial(g, ids, space);
  LinialResult lin_p = RunLinialParallel(g, ids, space, 3);
  EXPECT_EQ(lin_p.colors, lin.colors);
  EXPECT_EQ(lin_p.rounds, lin.rounds);
  EXPECT_EQ(lin_p.messages, lin.messages);
  EXPECT_EQ(lin_p.round_stats, lin.round_stats);

  std::vector<int> parent(n, -1);
  {
    std::vector<char> seen(n, 0);
    std::vector<int> order = {0};
    seen[0] = 1;
    for (size_t i = 0; i < order.size(); ++i) {
      for (int u : g.Neighbors(order[i])) {
        if (!seen[u]) {
          seen[u] = 1;
          parent[u] = order[i];
          order.push_back(u);
        }
      }
    }
  }
  ColeVishkinResult cv = ColeVishkin3Color(g, ids, parent, space);
  ColeVishkinResult cv_p = ColeVishkin3ColorParallel(g, ids, parent, space, 4);
  EXPECT_EQ(cv_p.colors, cv.colors);
  EXPECT_EQ(cv_p.rounds, cv.rounds);
  EXPECT_EQ(cv_p.messages, cv.messages);
  EXPECT_EQ(cv_p.round_stats, cv.round_stats);

  MisProblem mis;
  DistributedSweepResult sweep =
      RunDistributedNodeSweep(mis, g, ids, lin.colors, lin.num_colors);
  DistributedSweepResult sweep_p = RunDistributedNodeSweepParallel(
      mis, g, ids, lin.colors, lin.num_colors, 2);
  EXPECT_EQ(sweep_p.rounds, sweep.rounds);
  EXPECT_EQ(sweep_p.messages, sweep.messages);
  EXPECT_EQ(sweep_p.round_stats, sweep.round_stats);
  for (int e = 0; e < g.NumEdges(); ++e) {
    ASSERT_EQ(sweep_p.labeling.GetSlot(e, 0), sweep.labeling.GetSlot(e, 0));
    ASSERT_EQ(sweep_p.labeling.GetSlot(e, 1), sweep.labeling.GetSlot(e, 1));
  }

  Thm12Result thm = SolveNodeProblemOnTree(mis, g, ids, space, 4);
  Thm12Result thm_p = SolveNodeProblemOnTreeParallel(mis, g, ids, space, 4, 3);
  EXPECT_TRUE(thm_p.valid);
  EXPECT_EQ(thm_p.rounds_total, thm.rounds_total);
  EXPECT_EQ(thm_p.engine_messages, thm.engine_messages);
  EXPECT_EQ(thm_p.rake_compress.iteration, thm.rake_compress.iteration);
  for (int e = 0; e < g.NumEdges(); ++e) {
    ASSERT_EQ(thm_p.labeling.GetSlot(e, 0), thm.labeling.GetSlot(e, 0));
    ASSERT_EQ(thm_p.labeling.GetSlot(e, 1), thm.labeling.GetSlot(e, 1));
  }

  std::vector<Thm12Result> sweep_batch =
      SolveNodeProblemOnTreeBatch(mis, g, ids, space, {2, 4, 9}, 2);
  Thm12Result want_k9 = SolveNodeProblemOnTree(mis, g, ids, space, 9);
  EXPECT_EQ(sweep_batch[2].rounds_total, want_k9.rounds_total);
  EXPECT_EQ(sweep_batch[2].engine_messages, want_k9.engine_messages);
}

// Epoch wrap guard parity with Network: a run started near INT32_MAX
// re-arms and still produces the right transcript.
TEST(ParallelNetworkTest, EpochWrapRearm) {
  const int n = 90;
  Graph g = UniformRandomTree(n, 7000);
  auto ids = DefaultIds(n, 7001);
  Network serial(g, ids);
  DigestRunner want(n);
  serial.Run(want, 64);

  ParallelNetwork par(g, ids, 3);
  par.set_epoch_for_testing(INT32_MAX - 3);  // forces the pre-run re-arm
  DigestRunner got(n);
  par.Run(got, 64);
  EXPECT_EQ(got.digest_, want.digest_);
  EXPECT_EQ(par.messages_delivered(), serial.messages_delivered());
}

}  // namespace
}  // namespace treelocal
