// Scope of the transformation: the paper's classes P1/P2 are exactly the
// problems solvable by a 1-hop sequential greedy that extends any correct
// partial solution. This file demonstrates the *boundary*: sinkless
// orientation — one of only two problems with known tight nontrivial bounds
// (Theta(log n) on trees, [GS17, CKP19]) — is locally checkable but NOT in
// P2, because a 1-hop edge greedy can be forced into a dead end. Hence the
// transformation (correctly) does not apply to it, consistent with its
// omega(log* n) lower bound exceeding the guarantees of Theorems 12/15 for
// problems with f-style upper bounds.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "src/graph/labeling.h"
#include "src/problems/matching.h"

namespace treelocal {
namespace {

// Sinkless orientation in half-edge form: each edge is oriented by labeling
// its two half-edges {kOut on the tail, kIn on the head}; every node of
// degree >= 3 must have at least one kOut.
constexpr Label kOut = 0;
constexpr Label kIn = 1;

bool EdgeOk(Label a, Label b) {
  return (a == kOut && b == kIn) || (a == kIn && b == kOut);
}

bool NodeOk(const Graph& g, int v, const HalfEdgeLabeling& h) {
  if (g.Degree(v) < 3) return true;
  for (int e : g.IncidentEdges(v)) {
    if (h.Get(e, v) == kOut) return true;
  }
  return false;
}

bool Validate(const Graph& g, const HalfEdgeLabeling& h) {
  for (int e = 0; e < g.NumEdges(); ++e) {
    if (!EdgeOk(h.GetSlot(e, 0), h.GetSlot(e, 1))) return false;
  }
  for (int v = 0; v < g.NumNodes(); ++v) {
    if (!NodeOk(g, v, h)) return false;
  }
  return true;
}

TEST(ClassBoundaryTest, SinklessOrientationSolvableGlobally) {
  // Sanity: a global solution exists on any tree with all leaves oriented
  // inward... orient every edge toward an arbitrary root: then every
  // non-root internal node has its parent edge outgoing; pick the root as a
  // leaf so no degree->=3 node is a sink.
  Graph g = Spider(3, 2);  // center degree 3, legs of length 2
  HalfEdgeLabeling h(g);
  // Root at a leaf: node index of some leaf = last node; orient all edges
  // toward it via BFS parent pointers.
  int root = g.NumNodes() - 1;
  std::vector<int> parent(g.NumNodes(), -1);
  std::vector<int> stack = {root};
  std::vector<char> seen(g.NumNodes(), 0);
  seen[root] = 1;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int u : g.Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        parent[u] = v;
        stack.push_back(u);
      }
    }
  }
  for (int v = 0; v < g.NumNodes(); ++v) {
    if (parent[v] < 0) continue;
    int e = g.EdgeBetween(v, parent[v]);
    h.Set(e, v, kOut);
    h.Set(e, parent[v], kIn);
  }
  EXPECT_TRUE(Validate(g, h));
}

TEST(ClassBoundaryTest, OneHopGreedyHasDeadEnds) {
  // The P2 membership test fails: there is a correct partial solution and a
  // processing order under which NO labeling of the next edge can ever be
  // completed — a 1-hop greedy cannot even tell. Witness: K_{1,3} core
  // inside a spider; orient all of a degree-3 node's edges inward
  // (edge-by-edge each step looks locally fine since the node still has
  // unoriented edges), then the last edge's orientation choice "inward"
  // creates a sink that no future assignment can repair.
  Graph g = Spider(3, 1);  // center 0 with leaves 1, 2, 3
  HalfEdgeLabeling h(g);
  // Adversarial order: orient edges (0,1) and (0,2) inward to 0's leaves —
  // each step is consistent with *some* completion at the time.
  int e1 = g.EdgeBetween(0, 1);
  int e2 = g.EdgeBetween(0, 2);
  int e3 = g.EdgeBetween(0, 3);
  h.Set(e1, 0, kIn);
  h.Set(e1, 1, kOut);
  EXPECT_TRUE(EdgeOk(h.GetSlot(e1, 0), h.GetSlot(e1, 1)));
  h.Set(e2, 0, kIn);
  h.Set(e2, 2, kOut);
  // Still completable: e3 outgoing from 0 would save it...
  {
    HalfEdgeLabeling saved = h;
    saved.Set(e3, 0, kOut);
    saved.Set(e3, 3, kIn);
    EXPECT_TRUE(Validate(g, saved));
  }
  // ...but a 1-hop greedy at e3 cannot know node 0's global situation if
  // the adversary instead presents an isomorphic 1-hop view in which kIn is
  // the required choice: orienting e3 inward creates an unfixable sink.
  h.Set(e3, 0, kIn);
  h.Set(e3, 3, kOut);
  EXPECT_FALSE(Validate(g, h));
  // No relabeling of *future* items exists (all items are labeled): the
  // greedy's mistake is permanent. Contrast with Lemmas 16/17, where any
  // correct partial solution extends. This is why sinkless orientation has
  // an Omega(log n) lower bound on trees while P1/P2 problems with
  // O(f(Delta) + log* n) algorithms transform to O(f(g(n)) + log* n).
}

TEST(ClassBoundaryTest, P2ProblemsNeverDeadEndOnSameInstance) {
  // Control experiment: on the same instance, a genuine P2 problem
  // (maximal matching, Lemma 17 greedy) survives *every* processing order —
  // the extension property the transformation's correctness rests on.
  Graph g = Spider(3, 1);
  MatchingProblem mm;
  std::vector<int> order = {0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    HalfEdgeLabeling h(g);
    mm.CompleteEdges(g, order, h);
    std::string why;
    EXPECT_TRUE(mm.ValidateGraph(g, h, &why))
        << why << " order " << order[0] << order[1] << order[2];
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace
}  // namespace treelocal
