// Standalone transcript verifier for engine snapshots (src/local/snapshot.h).
//
// The snapshot format is self-contained — it carries the full edge list and
// id assignment — so this tool can validate and REPLAY a checkpointed run
// with no access to the original driver, graph file, or RNG seed. Three
// modes:
//
//   transcript_verify record <out.snap> [--family F] [--n N] [--seed S]
//                     [--k K] [--pause R] [--engine E] [--threads T]
//                     [--relabel] [--digest-messages]
//       Generate a tree workload (rake-compress with parameter k), run it to
//       round R (or to completion when R < 0, the default), and write the
//       checkpoint. Prints the snapshot summary.
//
//   transcript_verify check <in.snap>
//       Parse and fully validate the snapshot: file integrity hash, header,
//       section bounds, endpoint/port/halt ranges, and the per-round digest
//       chain linkage (digest[r] = ChainDigest(digest[r-1], active, sent,
//       msg_acc) from the recorded seed). Exit 0 iff valid.
//
//   transcript_verify replay <in.snap> --k K [--engine E] [--threads T]
//                     [--relabel] [--max-rounds M] [--expect-digest 0xH]
//       Reconstruct the graph from the snapshot, resume the run on a fresh
//       engine, and drive it to completion. Prints the final rounds /
//       messages / digest; with --expect-digest, exit 0 iff the final chain
//       digest matches (the CI digest gate compares a replayed-from-round-R
//       run against the uninterrupted recording this way).
//
// Engines: --engine network (default) | parallel | reference. The snapshot
// is canonical, so any engine x relabel x thread-count combination can pick
// up any recording — replaying on a different engine than the recorder is
// exactly the cross-engine resume contract the tests enforce.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/local/network.h"
#include "src/local/parallel_network.h"
#include "src/local/reference_network.h"
#include "src/local/snapshot.h"

namespace {

using treelocal::Graph;
using treelocal::local::ReadSnapshot;
using treelocal::local::ReconstructGraph;
using treelocal::local::SnapshotData;
using treelocal::local::SnapshotEngineKind;

struct Options {
  std::string mode;
  std::string path;
  std::string family = "uniform";
  std::string engine = "network";
  int n = 1 << 12;
  uint64_t seed = 1;
  int k = 2;
  int pause = -1;
  int threads = 2;
  int max_rounds = -1;  // < 0: derive from the Lemma 9 bound
  bool relabel = false;
  bool digest_messages = false;
  bool has_expect_digest = false;
  uint64_t expect_digest = 0;
};

[[noreturn]] void Usage(const std::string& err) {
  if (!err.empty()) std::cerr << "error: " << err << "\n";
  std::cerr << "usage: transcript_verify record <out.snap> [--family F] "
               "[--n N] [--seed S] [--k K]\n"
               "                        [--pause R] [--engine E] [--threads T] "
               "[--relabel] [--digest-messages]\n"
               "       transcript_verify check <in.snap>\n"
               "       transcript_verify replay <in.snap> --k K [--engine E] "
               "[--threads T] [--relabel]\n"
               "                        [--max-rounds M] [--expect-digest "
               "0xHEX]\n"
               "families: path star balanced3 balanced8 uniform recursive "
               "caterpillar binary\n"
               "engines: network parallel reference\n";
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options opt;
  if (argc < 3) Usage("mode and snapshot path required");
  opt.mode = argv[1];
  opt.path = argv[2];
  if (opt.mode != "record" && opt.mode != "check" && opt.mode != "replay") {
    Usage("unknown mode '" + opt.mode + "'");
  }
  auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) Usage(std::string(argv[i]) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--family") {
      opt.family = need(i++);
    } else if (a == "--engine") {
      opt.engine = need(i++);
    } else if (a == "--n") {
      opt.n = std::stoi(need(i++));
    } else if (a == "--seed") {
      opt.seed = std::stoull(need(i++));
    } else if (a == "--k") {
      opt.k = std::stoi(need(i++));
    } else if (a == "--pause") {
      opt.pause = std::stoi(need(i++));
    } else if (a == "--threads") {
      opt.threads = std::stoi(need(i++));
    } else if (a == "--max-rounds") {
      opt.max_rounds = std::stoi(need(i++));
    } else if (a == "--relabel") {
      opt.relabel = true;
    } else if (a == "--digest-messages") {
      opt.digest_messages = true;
    } else if (a == "--expect-digest") {
      opt.has_expect_digest = true;
      opt.expect_digest = std::stoull(need(i++), nullptr, 0);
    } else {
      Usage("unknown flag '" + a + "'");
    }
  }
  if (opt.engine != "network" && opt.engine != "parallel" &&
      opt.engine != "reference") {
    Usage("unknown engine '" + opt.engine + "'");
  }
  return opt;
}

treelocal::TreeFamily FamilyByName(const std::string& name) {
  for (treelocal::TreeFamily f : treelocal::AllTreeFamilies()) {
    if (treelocal::TreeFamilyName(f) == name) return f;
  }
  Usage("unknown tree family '" + name + "'");
}

const char* KindName(SnapshotEngineKind kind) {
  switch (kind) {
    case SnapshotEngineKind::kNetwork: return "network";
    case SnapshotEngineKind::kParallelNetwork: return "parallel";
    case SnapshotEngineKind::kBatchNetwork: return "batch";
    case SnapshotEngineKind::kReferenceNetwork: return "reference";
  }
  return "?";
}

std::string Hex(uint64_t x) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

void PrintSummary(const SnapshotData& snap) {
  std::cout << "engine=" << KindName(snap.engine_kind)
            << " batch=" << snap.batch << " n=" << snap.n << " m=" << snap.m
            << " round=" << snap.round
            << " finished=" << (snap.finished ? 1 : 0)
            << " digest_messages=" << (snap.digest_messages ? 1 : 0) << "\n";
  std::cout << "graph_hash=" << Hex(snap.graph_hash)
            << " ids_hash=" << Hex(snap.ids_hash) << "\n";
  for (size_t b = 0; b < snap.instances.size(); ++b) {
    const SnapshotData::Instance& inst = snap.instances[b];
    const uint64_t last =
        inst.rounds.empty() ? treelocal::support::kDigestSeed
                            : inst.rounds.back().digest;
    std::cout << "instance=" << b
              << " messages=" << inst.messages_delivered
              << " rounds_recorded=" << inst.rounds.size()
              << " deliverable=" << inst.deliverable.size()
              << " last_digest=" << Hex(last) << "\n";
  }
}

// Drives the named solo engine generically; the three engine classes share
// the RunUntil/Checkpoint/Resume/last_digest surface but no base class.
template <typename Engine>
int RunOnEngine(Engine& net, const Options& opt, treelocal::local::Algorithm& alg,
                int max_rounds, bool resume, const std::string& in_path) {
  if (resume) {
    std::ifstream in(in_path, std::ios::binary);
    if (!in) {
      std::cerr << "error: cannot open '" << in_path << "'\n";
      return 1;
    }
    net.Resume(in);
  }
  int rounds;
  if (opt.mode == "record" && opt.pause >= 0) {
    rounds = net.RunUntil(alg, max_rounds, opt.pause);
    if (!net.paused()) {
      std::cerr << "error: run finished at round " << rounds
                << " before reaching --pause " << opt.pause << "\n";
      return 1;
    }
  } else {
    rounds = net.Run(alg, max_rounds);
  }
  if (opt.mode == "record") {
    std::ofstream out(opt.path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot open '" << opt.path << "' for writing\n";
      return 1;
    }
    net.Checkpoint(out);
    out.flush();
    if (!out) {
      std::cerr << "error: write to '" << opt.path << "' failed\n";
      return 1;
    }
  }
  std::cout << "rounds=" << rounds << " messages=" << net.messages_delivered()
            << " paused=" << (net.paused() ? 1 : 0)
            << " final_digest=" << Hex(net.last_digest()) << "\n";
  if (opt.has_expect_digest && net.last_digest() != opt.expect_digest) {
    std::cerr << "DIGEST MISMATCH: expected " << Hex(opt.expect_digest)
              << ", replay produced " << Hex(net.last_digest()) << "\n";
    return 1;
  }
  return 0;
}

// Dispatches on --engine; `resume` replays `in_path` instead of a fresh run.
int Drive(const Graph& g, const std::vector<int64_t>& ids, const Options& opt,
          bool resume, const std::string& in_path, bool digest_messages) {
  treelocal::local::NetworkOptions nopt;
  nopt.relabel = opt.relabel;
  nopt.digest_messages = digest_messages;
  std::unique_ptr<treelocal::local::Algorithm> alg =
      treelocal::MakeRakeCompressAlgorithm(g, opt.k);
  int max_rounds = opt.max_rounds;
  if (max_rounds < 0) {
    // The drivers' Lemma 9 budget: 3 rounds per iteration plus slack.
    const int bound =
        treelocal::RakeCompressIterationBound(std::max(g.NumNodes(), 1), opt.k);
    max_rounds = 3 * (2 * bound + 8);
  }
  if (opt.engine == "parallel") {
    treelocal::local::ParallelNetwork net(g, ids, opt.threads, nopt);
    return RunOnEngine(net, opt, *alg, max_rounds, resume, in_path);
  }
  if (opt.engine == "reference") {
    treelocal::local::ReferenceNetwork net(g, ids, nopt);
    return RunOnEngine(net, opt, *alg, max_rounds, resume, in_path);
  }
  treelocal::local::Network net(g, ids, nopt);
  return RunOnEngine(net, opt, *alg, max_rounds, resume, in_path);
}

int Record(const Options& opt) {
  const Graph g =
      treelocal::MakeTree(FamilyByName(opt.family), opt.n, opt.seed);
  std::vector<int64_t> ids(g.NumNodes());
  std::iota(ids.begin(), ids.end(), 0);
  const int rc = Drive(g, ids, opt, /*resume=*/false, "", opt.digest_messages);
  if (rc != 0) return rc;
  std::ifstream in(opt.path, std::ios::binary);
  PrintSummary(ReadSnapshot(in));  // round-trip check of what we just wrote
  return 0;
}

int Check(const Options& opt) {
  std::ifstream in(opt.path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open '" << opt.path << "'\n";
    return 1;
  }
  const SnapshotData snap = ReadSnapshot(in);  // full validation
  std::cout << "OK " << opt.path << "\n";
  PrintSummary(snap);
  return 0;
}

int Replay(const Options& opt) {
  std::ifstream in(opt.path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open '" << opt.path << "'\n";
    return 1;
  }
  const SnapshotData snap = ReadSnapshot(in);
  in.close();
  if (snap.batch != 1) {
    std::cerr << "error: replay supports solo (batch=1) snapshots; this one "
                 "has batch="
              << snap.batch << "\n";
    return 1;
  }
  const Graph g = ReconstructGraph(snap);
  // Everything the engine needs travels in the file: graph, ids, and the
  // digest level. Only the algorithm parameter (--k) is external.
  return Drive(g, snap.ids, opt, /*resume=*/true, opt.path,
               snap.digest_messages);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Parse(argc, argv);
  try {
    if (opt.mode == "record") return Record(opt);
    if (opt.mode == "check") return Check(opt);
    return Replay(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
