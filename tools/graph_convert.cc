// Streaming edge-list -> .cgr converter and mmap-backed solve driver for
// the CompactGraph backend (src/graph/compact_graph.h).
//
//   graph_convert convert --output out.cgr (--input edges.txt [--binary]
//                         | --gen SPEC) [--nodes N] [--chunk-mb MB]
//       Build a validated .cgr from an edge list without ever holding it in
//       memory: arcs are packed into fixed-size chunks, each chunk is
//       sorted and spilled to a temp run file next to the output, and a
//       k-way merge streams the deduplicated arc sequence straight into
//       CompactGraph::Builder (external-memory sort; peak RSS is one chunk
//       plus the growing compressed image, independent of m).
//
//       --input reads SNAP-style text ("u v" per line, '#' comments) or,
//       with --binary, packed little-endian uint32 pairs. Self-loops and
//       out-of-range endpoints are structured errors naming the offending
//       line/pair; duplicate edges (and both-direction listings) collapse.
//       --gen skips the file and streams a generator instead:
//         --gen <family>:<n>:<seed>        (families as in transcript_verify)
//         --gen forest_union:<n>:<a>:<seed>
//
//   graph_convert solve <in.cgr> --k K [--engine network|parallel|reference]
//                       [--threads T] [--relabel] [--load]
//       Open the .cgr (mmap by default; --load reads + fully validates it
//       in memory), run rake-compress with parameter k under iota ids, and
//       print rounds / messages / final_digest — byte-comparable to the
//       last_digest of a Graph-backed `transcript_verify record` of the
//       same workload, which is exactly the CI round-trip gate. Peak RSS
//       is reported so the out-of-core claim is checkable from the log.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/rake_compress.h"
#include "src/graph/compact_graph.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/local/parallel_network.h"
#include "src/local/reference_network.h"

namespace {

using treelocal::CompactGraph;
using treelocal::CompactGraphError;

[[noreturn]] void Usage(const std::string& err) {
  if (!err.empty()) std::cerr << "error: " << err << "\n";
  std::cerr
      << "usage: graph_convert convert --output out.cgr\n"
         "           (--input edges.txt [--binary] | --gen SPEC)\n"
         "           [--nodes N] [--chunk-mb MB]\n"
         "       graph_convert solve <in.cgr> --k K [--engine E] "
         "[--threads T] [--relabel] [--load]\n"
         "gen specs: <family>:<n>:<seed> | forest_union:<n>:<a>:<seed>\n"
         "families: path star balanced3 balanced8 uniform recursive "
         "caterpillar binary\n"
         "engines: network parallel reference\n";
  std::exit(2);
}

// ---------------------------------------------------------------------------
// External-memory arc sorter: Add() both directed arcs of every edge packed
// as (node << 32 | neighbor); Drain() yields the globally sorted,
// deduplicated arc sequence — exactly CompactGraph::Builder's input
// contract. Chunks above the budget spill to run files; a merge with
// buffered readers never re-materializes the list.
class ArcSorter {
 public:
  ArcSorter(size_t chunk_arcs, std::string run_prefix)
      : chunk_arcs_(std::max<size_t>(chunk_arcs, 1024)),
        run_prefix_(std::move(run_prefix)) {
    chunk_.reserve(chunk_arcs_);
  }
  ~ArcSorter() {
    for (size_t r = 0; r < runs_; ++r) std::remove(RunPath(r).c_str());
  }

  void Add(uint64_t arc) {
    if (chunk_.size() == chunk_arcs_) Spill();
    chunk_.push_back(arc);
  }

  size_t runs() const { return runs_; }
  int64_t duplicates() const { return duplicates_; }

  // f(uint64_t arc) over the sorted unique sequence. Single use.
  template <typename F>
  void Drain(F&& f) {
    SortDedup(chunk_);
    if (runs_ == 0) {
      for (uint64_t arc : chunk_) f(arc);
      return;
    }
    if (!chunk_.empty()) Spill();  // final partial chunk joins the merge
    std::vector<uint64_t>().swap(chunk_);

    struct Run {
      std::ifstream in;
      std::vector<uint64_t> buf;
      size_t pos = 0;
      bool Fill() {
        buf.resize(1 << 16);
        in.read(reinterpret_cast<char*>(buf.data()),
                static_cast<std::streamsize>(buf.size() * sizeof(uint64_t)));
        buf.resize(static_cast<size_t>(in.gcount()) / sizeof(uint64_t));
        pos = 0;
        return !buf.empty();
      }
    };
    std::vector<std::unique_ptr<Run>> rs;
    using Head = std::pair<uint64_t, size_t>;  // (value, run index)
    std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
    for (size_t r = 0; r < runs_; ++r) {
      auto run = std::make_unique<Run>();
      run->in.open(RunPath(r), std::ios::binary);
      if (!run->in) {
        throw CompactGraphError("graph_convert: cannot reopen sort run " +
                                RunPath(r));
      }
      if (run->Fill()) heap.emplace(run->buf[run->pos], rs.size());
      rs.push_back(std::move(run));
    }
    bool have_last = false;
    uint64_t last = 0;
    while (!heap.empty()) {
      auto [value, r] = heap.top();
      heap.pop();
      if (!have_last || value != last) {
        f(value);
        last = value;
        have_last = true;
      } else {
        ++duplicates_;
      }
      Run& run = *rs[r];
      if (++run.pos < run.buf.size() || run.Fill()) {
        heap.emplace(run.buf[run.pos], r);
      }
    }
  }

 private:
  std::string RunPath(size_t r) const {
    return run_prefix_ + ".run" + std::to_string(r);
  }

  void SortDedup(std::vector<uint64_t>& v) {
    std::sort(v.begin(), v.end());
    const size_t before = v.size();
    v.erase(std::unique(v.begin(), v.end()), v.end());
    duplicates_ += static_cast<int64_t>(before - v.size());
  }

  void Spill() {
    SortDedup(chunk_);
    std::ofstream out(RunPath(runs_), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(chunk_.data()),
              static_cast<std::streamsize>(chunk_.size() * sizeof(uint64_t)));
    out.flush();
    if (!out) {
      throw CompactGraphError("graph_convert: write to sort run " +
                              RunPath(runs_) + " failed (disk full?)");
    }
    ++runs_;
    chunk_.clear();
  }

  size_t chunk_arcs_;
  std::string run_prefix_;
  std::vector<uint64_t> chunk_;
  size_t runs_ = 0;
  int64_t duplicates_ = 0;
};

struct ConvertOptions {
  std::string output;
  std::string input;
  std::string gen;
  bool binary = false;
  int64_t nodes = -1;  // -1: infer max id + 1 (file inputs)
  int chunk_mb = 256;
};

constexpr int64_t kMaxNode = (int64_t{1} << 31) - 1;

// Feeds one undirected edge into the sorter as two packed arcs, with the
// structured validation the loader contract promises. `where` names the
// offending input location in errors.
void AddEdge(ArcSorter& sorter, int64_t u, int64_t v, int64_t node_limit,
             const std::string& where) {
  if (u == v) {
    throw CompactGraphError("graph_convert: self-loop " + std::to_string(u) +
                            " at " + where);
  }
  if (u < 0 || v < 0 || u > kMaxNode || v > kMaxNode ||
      (node_limit >= 0 && (u >= node_limit || v >= node_limit))) {
    throw CompactGraphError(
        "graph_convert: endpoint out of range at " + where + ": (" +
        std::to_string(u) + ", " + std::to_string(v) + ")" +
        (node_limit >= 0 ? " with --nodes " + std::to_string(node_limit)
                         : ""));
  }
  sorter.Add(static_cast<uint64_t>(u) << 32 | static_cast<uint64_t>(v));
  sorter.Add(static_cast<uint64_t>(v) << 32 | static_cast<uint64_t>(u));
}

// Text loader: "u v" per line, '#' comments, blank lines skipped. Returns
// max node id seen (-1 if none).
int64_t ReadTextEdges(const std::string& path, ArcSorter& sorter,
                      int64_t node_limit) {
  std::ifstream in(path);
  if (!in) throw CompactGraphError("graph_convert: cannot open " + path);
  std::string line;
  int64_t max_id = -1;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '#') continue;
    char* end = nullptr;
    errno = 0;
    const long long u = std::strtoll(p, &end, 10);
    if (end == p || errno != 0) {
      throw CompactGraphError("graph_convert: unparsable line " +
                              std::to_string(lineno) + " of " + path);
    }
    p = end;
    const long long v = std::strtoll(p, &end, 10);
    if (end == p || errno != 0) {
      throw CompactGraphError("graph_convert: line " + std::to_string(lineno) +
                              " of " + path + " has no second endpoint");
    }
    AddEdge(sorter, u, v, node_limit,
            path + ":" + std::to_string(lineno));
    max_id = std::max<int64_t>(max_id, std::max(u, v));
  }
  return max_id;
}

// Binary loader: packed little-endian uint32 pairs, one per edge.
int64_t ReadBinaryEdges(const std::string& path, ArcSorter& sorter,
                        int64_t node_limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CompactGraphError("graph_convert: cannot open " + path);
  int64_t max_id = -1;
  int64_t pair_index = 0;
  std::vector<uint32_t> buf(1 << 16);
  while (true) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(uint32_t)));
    const size_t got = static_cast<size_t>(in.gcount());
    if (got % (2 * sizeof(uint32_t)) != 0) {
      throw CompactGraphError(
          "graph_convert: " + path +
          " is not a whole number of uint32 endpoint pairs");
    }
    const size_t words = got / sizeof(uint32_t);
    for (size_t i = 0; i + 1 < words; i += 2, ++pair_index) {
      const int64_t u = buf[i], v = buf[i + 1];
      AddEdge(sorter, u, v, node_limit,
              path + " pair " + std::to_string(pair_index));
      max_id = std::max(max_id, std::max(u, v));
    }
    if (got < buf.size() * sizeof(uint32_t)) break;
  }
  return max_id;
}

// --gen SPEC: streams a generator through the same sorter path as file
// input (the generators emit unsorted, possibly duplicated edges; the
// external sort is what canonicalizes them). Returns the node count.
int64_t StreamGenerator(const std::string& spec, ArcSorter& sorter) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t colon = spec.find(':', pos);
    parts.push_back(spec.substr(pos, colon - pos));
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  auto arg = [&](size_t i) -> int64_t {
    if (i >= parts.size()) Usage("gen spec '" + spec + "' is missing fields");
    return std::stoll(parts[i]);
  };
  const auto emit = [&](int u, int v) {
    AddEdge(sorter, u, v, -1, "gen '" + spec + "'");
  };
  if (parts[0] == "forest_union") {
    const int64_t n = arg(1), a = arg(2), seed = arg(3);
    treelocal::ForestUnionStreamed(static_cast<int>(n), static_cast<int>(a),
                                   static_cast<uint64_t>(seed), emit);
    return n;
  }
  for (treelocal::TreeFamily f : treelocal::AllTreeFamilies()) {
    if (treelocal::TreeFamilyName(f) == parts[0]) {
      const int64_t n = arg(1), seed = arg(2);
      return treelocal::MakeTreeStreamed(f, static_cast<int>(n),
                                         static_cast<uint64_t>(seed), emit);
    }
  }
  Usage("unknown gen family '" + parts[0] + "'");
}

int Convert(const ConvertOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  const size_t chunk_arcs =
      (static_cast<size_t>(opt.chunk_mb) << 20) / sizeof(uint64_t);
  ArcSorter sorter(chunk_arcs, opt.output);

  int64_t n;
  if (!opt.gen.empty()) {
    n = StreamGenerator(opt.gen, sorter);
    if (opt.nodes >= 0) n = std::max(n, opt.nodes);
  } else {
    const int64_t max_id = opt.binary
                               ? ReadBinaryEdges(opt.input, sorter, opt.nodes)
                               : ReadTextEdges(opt.input, sorter, opt.nodes);
    n = opt.nodes >= 0 ? opt.nodes : max_id + 1;
  }
  if (n > kMaxNode + 1) {
    throw CompactGraphError("graph_convert: node count " + std::to_string(n) +
                            " exceeds the 2^31 - 1 node limit");
  }
  const double read_s = treelocal::bench::SecondsSince(t0);

  CompactGraph::Builder builder(n);
  int64_t arcs = 0;
  sorter.Drain([&](uint64_t arc) {
    builder.AddArc(static_cast<int64_t>(arc >> 32),
                   static_cast<int64_t>(arc & 0xffffffffu));
    ++arcs;
  });
  const CompactGraph g = builder.Finish();  // full structural validation
  g.WriteFile(opt.output);
  // Reopen mapped: proves the file on disk round-trips through the
  // cheap-validation open path consumers will use.
  const CompactGraph mapped = CompactGraph::OpenMapped(opt.output);

  const int64_t m = g.NumEdges();
  const double bpe = m > 0 ? static_cast<double>(g.MemoryBytes()) / m : 0.0;
  // Uncompressed-CSR footprint of the same graph (Graph::MemoryBytes's
  // formula: offset_ + nbr_ + inc_ + edge_u_ + edge_v_ as 4-byte ints).
  const int64_t csr_bytes = 4 * ((n + 1) + 2 * m + 2 * m + m + m);
  std::printf(
      "n=%lld m=%lld max_degree=%d hubs=%u duplicates_dropped=%lld\n",
      static_cast<long long>(n), static_cast<long long>(m), g.MaxDegree(),
      g.num_hubs(), static_cast<long long>(sorter.duplicates()));
  std::printf(
      "cgr_bytes=%lld bytes_per_edge=%.3f csr_bytes=%lld csr_ratio=%.2f "
      "sort_runs=%zu\n",
      static_cast<long long>(g.MemoryBytes()), bpe,
      static_cast<long long>(csr_bytes),
      g.MemoryBytes() > 0
          ? static_cast<double>(csr_bytes) / static_cast<double>(g.MemoryBytes())
          : 0.0,
      sorter.runs());
  std::printf(
      "read_seconds=%.3f total_seconds=%.3f peak_rss_bytes=%lld "
      "mapped_ok=%d\n",
      read_s, treelocal::bench::SecondsSince(t0),
      static_cast<long long>(treelocal::bench::PeakRssBytes()),
      mapped.NumEdges() == m ? 1 : 0);
  std::printf("wrote %s\n", opt.output.c_str());
  (void)arcs;
  return 0;
}

// ---------------------------------------------------------------------------
// solve: the CI round-trip's second half.

struct SolveOptions {
  std::string path;
  std::string engine = "network";
  int k = 2;
  int threads = 2;
  bool relabel = false;
  bool load = false;  // FromFile (full validation) instead of OpenMapped
};

template <typename Engine>
int SolveOn(Engine& net, treelocal::local::Algorithm& alg, int max_rounds) {
  const int rounds = net.Run(alg, max_rounds);
  std::printf("rounds=%d messages=%lld final_digest=0x%016llx\n", rounds,
              static_cast<long long>(net.messages_delivered()),
              static_cast<unsigned long long>(net.last_digest()));
  std::printf("peak_rss_bytes=%lld current_rss_bytes=%lld\n",
              static_cast<long long>(treelocal::bench::PeakRssBytes()),
              static_cast<long long>(treelocal::bench::CurrentRssBytes()));
  return 0;
}

int Solve(const SolveOptions& opt) {
  const CompactGraph g = opt.load ? CompactGraph::FromFile(opt.path)
                                  : CompactGraph::OpenMapped(opt.path);
  std::printf("opened %s n=%d m=%lld mapped=%d graph_rss_bytes=%lld\n",
              opt.path.c_str(), g.NumNodes(),
              static_cast<long long>(g.NumEdges()), g.mapped() ? 1 : 0,
              static_cast<long long>(treelocal::bench::CurrentRssBytes()));
  std::vector<int64_t> ids(g.NumNodes());
  std::iota(ids.begin(), ids.end(), 0);
  treelocal::local::NetworkOptions nopt;
  nopt.relabel = opt.relabel;
  std::unique_ptr<treelocal::local::Algorithm> alg =
      treelocal::MakeRakeCompressAlgorithm(g, opt.k);
  const int bound = treelocal::RakeCompressIterationBound(
      std::max(g.NumNodes(), 1), opt.k);
  const int max_rounds = 3 * (2 * bound + 8);
  if (opt.engine == "parallel") {
    treelocal::local::ParallelNetwork net(g, ids, opt.threads, nopt);
    return SolveOn(net, *alg, max_rounds);
  }
  if (opt.engine == "reference") {
    treelocal::local::ReferenceNetwork net(g, ids, nopt);
    return SolveOn(net, *alg, max_rounds);
  }
  if (opt.engine != "network") Usage("unknown engine '" + opt.engine + "'");
  treelocal::local::Network net(g, ids, nopt);
  return SolveOn(net, *alg, max_rounds);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage("mode required (convert | solve)");
  const std::string mode = argv[1];
  auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) Usage(std::string(argv[i]) + " needs a value");
    return argv[i + 1];
  };
  try {
    if (mode == "convert") {
      ConvertOptions opt;
      for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--output") {
          opt.output = need(i++);
        } else if (a == "--input") {
          opt.input = need(i++);
        } else if (a == "--gen") {
          opt.gen = need(i++);
        } else if (a == "--binary") {
          opt.binary = true;
        } else if (a == "--nodes") {
          opt.nodes = std::stoll(need(i++));
        } else if (a == "--chunk-mb") {
          opt.chunk_mb = std::stoi(need(i++));
          if (opt.chunk_mb < 1) Usage("--chunk-mb must be >= 1");
        } else {
          Usage("unknown convert flag '" + a + "'");
        }
      }
      if (opt.output.empty()) Usage("--output is required");
      if (opt.gen.empty() == opt.input.empty()) {
        Usage("exactly one of --input / --gen is required");
      }
      return Convert(opt);
    }
    if (mode == "solve") {
      if (argc < 3) Usage("solve needs a .cgr path");
      SolveOptions opt;
      opt.path = argv[2];
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--k") {
          opt.k = std::stoi(need(i++));
        } else if (a == "--engine") {
          opt.engine = need(i++);
        } else if (a == "--threads") {
          opt.threads = std::stoi(need(i++));
        } else if (a == "--relabel") {
          opt.relabel = true;
        } else if (a == "--load") {
          opt.load = true;
        } else {
          Usage("unknown solve flag '" + a + "'");
        }
      }
      return Solve(opt);
    }
    Usage("unknown mode '" + mode + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
