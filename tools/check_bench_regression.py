#!/usr/bin/env python3
"""Regression bounds for BENCH_engine.json round trajectories.

CI historically gated only on transcript identity; this closes the ROADMAP
leftover by asserting the *shape* of the per-phase round trajectories and
floor bounds on the acceptance ratios:

  * every record carrying `transcripts_identical` must say true — the
    determinism contract, restated over the merged artifact;
  * every `*round_active_nodes` trajectory must be non-increasing with a
    positive final round: nodes only ever leave the worklist within a run,
    so a growing (or zero-tail) curve means the engine's halting or
    RoundStats accounting broke;
  * every `*round_messages` trajectory must be non-negative;
  * every `*round_seconds` trajectory must show per-round cost tracking the
    active-node count, not n: the median of the last three rounds (a
    handful of live nodes) must not exceed the mean of the first three
    (all n live), beyond a small absolute floor for timer noise;
  * per-experiment speedup floors (loose — CI runners are shared and
    noisy; these catch collapses, not percent-level drift);
  * wake-scheduler accounting: records carrying the sweep visit fields
    must stay transcript-identical with scheduling on vs off
    (`scheduler_identical`), and the scheduled visit count must stay
    within VISIT_RATIO_BOUND of decisions + message wakes;
  * compressed-backend bounds: per-record backstops on
    `compact_bytes_per_edge` / `compact_ratio`, identity gating of the
    compression numbers, and a demonstration floor (<= 6 bytes/edge,
    >= 4x vs CSR) on the best identity-gated workload.

Usage: check_bench_regression.py <path/to/BENCH_engine.json>
Exits non-zero listing every violated bound.
"""

import json
import math
import sys

# Absolute floor under which round timings are treated as timer noise.
TAIL_NOISE_FLOOR_SECONDS = 5e-5

# Wake-scheduler visit bound: a scheduled class sweep's engine visits must
# approach the useful work — decisions plus message wakes — instead of the
# always-visit sum of live counts. 1.2x leaves room for re-sleep visits
# (a woken node peeking and going back to sleep) without letting the
# calendar degrade back into an idle walk. Structural, so it applies at
# every size the bench records, not just acceptance runs.
VISIT_RATIO_BOUND = 1.2

# experiment -> minimum acceptable value of the record's "speedup" field.
# Floors are intentionally loose (collapse detectors): single-core CI
# containers cannot show real parallel speedup, and shared runners swing
# wall-clock +-30%.
SPEEDUP_FLOORS = {
    # Optimized engine vs the naive reference: must never fall back to
    # reference-level throughput.
    "rake_compress_engine_acceptance": 1.0,
    # Sharded / batched / relabeled runs must never lose big to serial.
    # (Batched smoke runs at CI's cache-resident n sit near 0.5x by design —
    # the batch engine amortizes DRAM traffic that tiny inputs do not have.)
    "parallel_scaling": 0.5,
    "parallel_batch": 0.35,
    "relabel_ablation": 0.5,
    "batched_k_sweep_rake_compress": 0.35,
    # Dedup runs strictly fewer instances; a collapse below 0.8 means the
    # fan-out copy started dominating the saved engine work.
    "batched_k_sweep_dedup": 0.8,
    # Bit-plane CV lanes vs the scalar BatchNetwork: the planes must win at
    # every recorded size (the word-parallel round pass touches ~planes/8
    # bytes per instance against 24-byte scalar mailbox slots); 1.0 is the
    # smoke floor, the 2x claim is gated on acceptance-sized records below.
    "bitplane_cv_batch": 1.0,
    # Engine-native Thm 3/15 pipeline vs the legacy oracle on whole-pipeline
    # runs (loose: small-n records are noise-dominated; the hard 1.0 floor
    # lives on the acceptance-sized phase-2/3 record below).
    "thm15_pipeline": 0.5,
    "thm3_pipeline": 0.5,
    "arboricity_pipeline": 0.5,
    "node_base_f_delta": 0.3,
    "edge_base_f_delta": 0.15,
}

# Acceptance-sized records (the bench sets "acceptance": true only for the
# real 2^18+ measurement, never for CI smoke sizes): the engine-native
# phases must not collapse against the preserved legacy path. The floor is
# 0.8, not 1.0: an identical binary re-run back to back on the shared
# container measured speedups from 0.69x to 1.04x against itself, so a
# parity-level floor on a single measurement is pure noise roulette. The
# hard gates on these records are transcript identity and the wake-
# scheduler visit bound above, which are deterministic.
# Compressed graph backend (bench_graph_backend): hard demonstration
# floors applied to the BEST identity-gated workload, plus loose
# per-record backstops (see check_record / check_compact_group).
COMPACT_BYTES_PER_EDGE_FLOOR = 6.0
COMPACT_RATIO_FLOOR = 4.0
COMPACT_BYTES_PER_EDGE_BACKSTOP = 8.5
COMPACT_RATIO_BACKSTOP = 3.2

ACCEPTANCE_FLOORS = {
    "edge_pipeline_phase23": 0.8,
    # The bit-plane batch kernels' headline claim: >= 2x instance
    # throughput over scalar batching at B = 64 on the acceptance-sized
    # dense-round workload. Unlike the parity-level floors above, 2.0 is
    # far from the noise band (measured ~5-15x), so a breach means the
    # word-parallel path actually collapsed.
    "bitplane_cv_batch": 2.0,
}


def fail(msgs, record, what):
    src = record.get("source", "?")
    exp = record.get("experiment", "?")
    msgs.append(f"[{src}/{exp}] {what}")


def check_record(rec, msgs):
    if rec.get("transcripts_identical") is False:
        fail(msgs, rec, "transcripts_identical is false")
    if rec.get("scheduler_identical") is False:
        fail(msgs, rec, "scheduler_identical is false (wake scheduling "
                        "changed the transcript)")

    visits = rec.get("sweep_visits_scheduled")
    if visits is not None:
        useful = rec.get("sweep_decisions", 0) + rec.get("sweep_wakes", 0)
        if useful > 0 and visits > VISIT_RATIO_BOUND * useful:
            fail(msgs, rec,
                 f"scheduled sweep visits {visits} exceed "
                 f"{VISIT_RATIO_BOUND}x (decisions+wakes) = "
                 f"{VISIT_RATIO_BOUND * useful:.0f} — the wake calendar is "
                 f"degrading back into an idle walk")
        if rec.get("sweep_idle_visits_eliminated", 0) < 0:
            fail(msgs, rec,
                 "sweep_idle_visits_eliminated is negative (scheduling "
                 "visited MORE than always-visit)")

    for key, value in rec.items():
        if not isinstance(value, list) or not value:
            continue
        if key.endswith("round_active_nodes"):
            if any(b > a for a, b in zip(value, value[1:])):
                fail(msgs, rec, f"{key} is not non-increasing")
            if value[-1] <= 0:
                fail(msgs, rec, f"{key} ends at {value[-1]} (no live nodes in final round)")
            if "n" in rec and value[0] > rec["n"]:
                fail(msgs, rec, f"{key} starts above n ({value[0]} > {rec['n']})")
        elif key.endswith("round_messages"):
            if any(m is None or m < 0 for m in value):
                fail(msgs, rec, f"{key} has negative entries")
        elif key.endswith("round_seconds"):
            if len(value) < 8 or any(v is None for v in value):
                continue  # too short for a meaningful head/tail split
            # The rule asserts per-round cost tracks the active-node count.
            # It only has teeth when the active curve actually decays; a
            # phase whose participants all halt in the same round (the
            # fused multi-forest Cole-Vishkin) is flat by design, and a
            # flat cost curve IS tracking it.
            active = rec.get(key[: -len("round_seconds")] +
                             "round_active_nodes")
            if (isinstance(active, list) and len(active) >= 2 and
                    2 * active[-1] > active[1]):
                continue
            head = sum(value[:3]) / 3.0
            tail = sorted(value[-3:])[1]  # median of the last three rounds
            bound = max(head, TAIL_NOISE_FLOOR_SECONDS)
            if tail > bound:
                fail(
                    msgs, rec,
                    f"{key}: tail median {tail:.3g}s exceeds head mean "
                    f"{head:.3g}s — per-round cost no longer tracks active nodes",
                )

    exp = rec.get("experiment")
    floor = SPEEDUP_FLOORS.get(exp)
    if rec.get("acceptance") is True and exp in ACCEPTANCE_FLOORS:
        floor = ACCEPTANCE_FLOORS[exp]
    speedup = rec.get("speedup")
    if floor is not None and speedup is not None:
        if not isinstance(speedup, (int, float)) or not math.isfinite(speedup):
            fail(msgs, rec, f"speedup is not finite: {speedup}")
        elif speedup < floor:
            fail(msgs, rec, f"speedup {speedup:.3f} below floor {floor}")

    # Records carrying the explicit bitplane_speedup field are gated even if
    # their experiment name is ever reshuffled: 2.0 on acceptance-sized
    # runs, 1.0 on smoke sizes.
    bp = rec.get("bitplane_speedup")
    if bp is not None:
        bp_floor = 2.0 if rec.get("acceptance") is True else 1.0
        if not isinstance(bp, (int, float)) or not math.isfinite(bp):
            fail(msgs, rec, f"bitplane_speedup is not finite: {bp}")
        elif bp < bp_floor:
            fail(msgs, rec,
                 f"bitplane_speedup {bp:.3f} below floor {bp_floor}")

    if exp == "batched_k_sweep_dedup":
        if rec.get("dedup_factor", 0) < 1.0:
            fail(msgs, rec, f"dedup_factor {rec.get('dedup_factor')} < 1")

    # Compressed-backend records: per-record backstops. Gap widths grow
    # with log(n), so bytes/edge drifts up at the 2^20 workload (~7.4) —
    # the backstop catches encoder regressions, while the headline <= 6
    # bytes/edge / >= 4x claims are gated on the best recorded workload in
    # check_compact_group (the ISSUE acceptance is "demonstrated on the
    # bench workloads", which the 2^14 record carries at ~5.5/5.1x).
    # The backstops are scoped to the matrix workloads ("compact_backend");
    # the huge out-of-core record ("compact_backend_huge", recursive tree at
    # n ~ 10^8) legitimately sits wider because gap varints span the whole
    # id range, and its claims are residency claims, not compression ones.
    bpe = rec.get("compact_bytes_per_edge")
    if bpe is not None and exp == "compact_backend":
        if not isinstance(bpe, (int, float)) or not math.isfinite(bpe):
            fail(msgs, rec, f"compact_bytes_per_edge is not finite: {bpe}")
        elif bpe > COMPACT_BYTES_PER_EDGE_BACKSTOP:
            fail(msgs, rec,
                 f"compact_bytes_per_edge {bpe:.3f} above backstop "
                 f"{COMPACT_BYTES_PER_EDGE_BACKSTOP}")
        if "transcripts_identical" not in rec:
            fail(msgs, rec,
                 "compact_backend record lacks the transcripts_identical "
                 "identity gate — compression numbers are only admissible "
                 "from identity-gated runs")
        ratio = rec.get("compact_ratio")
        if ratio is not None and isinstance(ratio, (int, float)):
            if not math.isfinite(ratio) or \
                    ratio < COMPACT_RATIO_BACKSTOP:
                fail(msgs, rec,
                     f"compact_ratio {ratio} below backstop "
                     f"{COMPACT_RATIO_BACKSTOP}")


def check_compact_group(records, msgs):
    """Demonstration gate for the compressed backend: among identity-gated
    compact_backend records, the best workload must still demonstrate the
    headline claims (<= 6 bytes/edge, >= 4x smaller than the CSR)."""
    gated = [r for r in records
             if r.get("experiment") == "compact_backend" and
             r.get("transcripts_identical") is True]
    if not gated:
        return  # nothing recorded yet; per-record gates handle the rest
    best_bpe = min(r.get("compact_bytes_per_edge", math.inf) for r in gated)
    best_ratio = max(r.get("compact_ratio", 0.0) for r in gated)
    if best_bpe > COMPACT_BYTES_PER_EDGE_FLOOR:
        msgs.append(
            f"[compact_backend] best bytes/edge {best_bpe:.3f} exceeds the "
            f"{COMPACT_BYTES_PER_EDGE_FLOOR} demonstration floor on every "
            f"identity-gated workload")
    if best_ratio < COMPACT_RATIO_FLOOR:
        msgs.append(
            f"[compact_backend] best CSR ratio {best_ratio:.3f} below the "
            f"{COMPACT_RATIO_FLOOR}x demonstration floor on every "
            f"identity-gated workload")


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        records = json.load(f)
    if not isinstance(records, list) or not records:
        print(f"{argv[1]}: expected a non-empty record array")
        return 1

    msgs = []
    trajectories = 0
    for rec in records:
        trajectories += sum(
            1 for k, v in rec.items()
            if isinstance(v, list) and k.endswith("round_active_nodes"))
        check_record(rec, msgs)
    check_compact_group(records, msgs)

    print(f"checked {len(records)} records, {trajectories} active-node "
          f"trajectories, {len(msgs)} violations")
    for m in msgs:
        print(f"  REGRESSION: {m}")
    return 1 if msgs else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
