// Command-line client for treelocald. Subcommands:
//
//   treelocal_client ping --port P
//       Round-trip a ping; prints the server protocol version.
//
//   treelocal_client solve --port P [--family F] [--n N] [--seed S]
//       [--kind rake|thm12|thm15|decomp] [--problem NAME] [--k K] [--a A]
//       [--max-rounds M] [--cancel]
//       Generate the named tree family (same generator and iota id
//       convention as `transcript_verify record`, so the printed digest is
//       directly comparable to a recorded solo run), register it, solve,
//       and print one result line:
//         result kind=... state=... rounds=... messages=... digest=0x...
//       With --cancel, cancels the ticket right after submitting and
//       prints whatever terminal state the ticket reached.
//
//   treelocal_client stats --port P
//       Print the daemon's counters, one "key=value" per line.
//
//   treelocal_client shutdown --port P
//       Ask the daemon to exit.
//
// Exit status: 0 on success (for solve: ticket reached kDone, or any
// terminal state under --cancel), non-zero otherwise — the CI smoke test
// leans on this.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/serve/client.h"

namespace {

using treelocal::serve::Client;
using treelocal::serve::ProblemId;
using treelocal::serve::ServerStats;
using treelocal::serve::SolveKind;
using treelocal::serve::SolveResult;
using treelocal::serve::SolveSpec;
using treelocal::serve::TicketState;
using treelocal::serve::TicketStateName;

[[noreturn]] void Usage(const std::string& err) {
  if (!err.empty()) std::cerr << "error: " << err << "\n";
  std::cerr << "usage: treelocal_client <ping|solve|stats|shutdown> --port P "
               "[options]\n"
               "  solve options: [--family F] [--n N] [--seed S]\n"
               "    [--kind rake|thm12|thm15|decomp] [--problem NAME]\n"
               "    [--k K] [--a A] [--max-rounds M] [--cancel]\n"
               "  problems: coloring | deg-coloring | mis | edge-coloring |\n"
               "    edge-deg-coloring | matching\n";
  std::exit(err.empty() ? 0 : 2);
}

treelocal::TreeFamily FamilyByName(const std::string& name) {
  for (treelocal::TreeFamily f : treelocal::AllTreeFamilies()) {
    if (treelocal::TreeFamilyName(f) == name) return f;
  }
  Usage("unknown tree family '" + name + "'");
}

SolveKind KindByName(const std::string& name) {
  if (name == "rake") return SolveKind::kRakeCompress;
  if (name == "thm12") return SolveKind::kThm12Node;
  if (name == "thm15") return SolveKind::kThm15Edge;
  if (name == "decomp") return SolveKind::kDecomposition;
  Usage("unknown kind '" + name + "'");
}

ProblemId ProblemByName(const std::string& name) {
  if (name == "coloring") return ProblemId::kColoringDeltaPlusOne;
  if (name == "deg-coloring") return ProblemId::kColoringDegPlusOne;
  if (name == "mis") return ProblemId::kMis;
  if (name == "edge-coloring") return ProblemId::kEdgeColoringTwoDeltaMinusOne;
  if (name == "edge-deg-coloring") {
    return ProblemId::kEdgeColoringEdgeDegreePlusOne;
  }
  if (name == "matching") return ProblemId::kMatching;
  Usage("unknown problem '" + name + "'");
}

std::string Hex(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* KindName(SolveKind k) {
  switch (k) {
    case SolveKind::kRakeCompress: return "rake";
    case SolveKind::kThm12Node: return "thm12";
    case SolveKind::kThm15Edge: return "thm15";
    case SolveKind::kDecomposition: return "decomp";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage("missing subcommand");
  const std::string cmd = argv[1];
  int port = 0;
  std::string family = "uniform";
  int n = 1 << 12;
  uint64_t seed = 1;
  SolveSpec spec;
  bool cancel = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](int& idx) -> std::string {
      if (idx + 1 >= argc) Usage("missing value for " + a);
      return argv[++idx];
    };
    if (a == "--port") {
      port = std::atoi(need(i).c_str());
    } else if (a == "--family") {
      family = need(i);
    } else if (a == "--n") {
      n = std::atoi(need(i).c_str());
    } else if (a == "--seed") {
      seed = std::strtoull(need(i).c_str(), nullptr, 0);
    } else if (a == "--kind") {
      spec.kind = KindByName(need(i));
    } else if (a == "--problem") {
      spec.problem = ProblemByName(need(i));
    } else if (a == "--k") {
      spec.k = std::atoi(need(i).c_str());
    } else if (a == "--a") {
      spec.a = std::atoi(need(i).c_str());
    } else if (a == "--max-rounds") {
      spec.max_rounds = std::atoi(need(i).c_str());
    } else if (a == "--cancel") {
      cancel = true;
    } else {
      Usage("unknown flag '" + a + "'");
    }
  }
  if (port <= 0) Usage("--port is required");

  // Pick defaults that satisfy the pipelines' validation when the user
  // asked for a theorem kind but left k at the rake-compress default.
  if ((spec.kind == SolveKind::kThm15Edge ||
       spec.kind == SolveKind::kDecomposition) &&
      spec.k < 5 * spec.a) {
    spec.k = 5 * spec.a;
  }
  if (spec.kind == SolveKind::kThm12Node &&
      spec.problem == ProblemId::kNone) {
    spec.problem = ProblemId::kColoringDeltaPlusOne;
  }
  if (spec.kind == SolveKind::kThm15Edge &&
      spec.problem == ProblemId::kNone) {
    spec.problem = ProblemId::kEdgeColoringTwoDeltaMinusOne;
  }

  Client client;
  std::string error;
  if (!client.Connect("127.0.0.1", port, &error)) {
    std::cerr << "treelocal_client: " << error << "\n";
    return 1;
  }

  if (cmd == "ping") {
    uint32_t version = 0;
    if (!client.Ping(&version, &error)) {
      std::cerr << "treelocal_client: " << error << "\n";
      return 1;
    }
    std::cout << "pong version=" << version << "\n";
    return 0;
  }

  if (cmd == "stats") {
    ServerStats s;
    if (!client.Stats(&s, &error)) {
      std::cerr << "treelocal_client: " << error << "\n";
      return 1;
    }
    std::cout << "graphs=" << s.graphs << "\nrequests=" << s.requests
              << "\ncompleted=" << s.completed << "\nfailed=" << s.failed
              << "\ncancelled=" << s.cancelled
              << "\nrejected=" << s.rejected << "\nevicted=" << s.evicted
              << "\nbatches=" << s.batches
              << "\nbatched_requests=" << s.batched_requests
              << "\nmax_batch=" << s.max_batch
              << "\nqueue_depth=" << s.queue_depth
              << "\nmax_queue_depth=" << s.max_queue_depth
              << "\ninflight=" << s.inflight
              << "\nengine_rounds=" << s.engine_rounds
              << "\nengine_messages=" << s.engine_messages
              << "\nprotocol_errors=" << s.protocol_errors
              << "\nuptime_micros=" << s.uptime_micros << "\n";
    return 0;
  }

  if (cmd == "shutdown") {
    if (!client.Shutdown(&error)) {
      std::cerr << "treelocal_client: " << error << "\n";
      return 1;
    }
    std::cout << "shutdown acknowledged\n";
    return 0;
  }

  if (cmd != "solve") Usage("unknown subcommand '" + cmd + "'");

  const treelocal::Graph g =
      treelocal::MakeTree(FamilyByName(family), n, seed);
  std::vector<int64_t> ids(g.NumNodes());
  std::iota(ids.begin(), ids.end(), 0);

  uint64_t key = 0;
  bool fresh = false;
  if (!client.RegisterGraph(g, ids, &key, &fresh, &error)) {
    std::cerr << "treelocal_client: " << error << "\n";
    return 1;
  }
  std::cout << "registered key=" << Hex(key) << " n=" << g.NumNodes()
            << " m=" << g.NumEdges() << " fresh=" << (fresh ? 1 : 0) << "\n";

  uint64_t ticket = 0;
  if (!client.Solve(key, spec, &ticket, &error)) {
    std::cerr << "treelocal_client: " << error << "\n";
    return 1;
  }

  if (cancel) {
    TicketState state;
    if (!client.Cancel(ticket, &state, &error)) {
      std::cerr << "treelocal_client: " << error << "\n";
      return 1;
    }
    // Cancel is best-effort: the ticket may already be running or done.
    // Wait for whatever terminal state it reaches.
    SolveResult result;
    std::string why;
    if (!client.Fetch(ticket, /*block=*/true, &state, &result, &why,
                      &error)) {
      std::cerr << "treelocal_client: " << error << "\n";
      return 1;
    }
    std::cout << "result kind=" << KindName(spec.kind)
              << " state=" << TicketStateName(state) << "\n";
    return 0;
  }

  TicketState state;
  SolveResult result;
  std::string why;
  if (!client.Fetch(ticket, /*block=*/true, &state, &result, &why, &error)) {
    std::cerr << "treelocal_client: " << error << "\n";
    return 1;
  }
  if (state != TicketState::kDone) {
    std::cerr << "treelocal_client: ticket " << TicketStateName(state)
              << (why.empty() ? "" : ": " + why) << "\n";
    return 1;
  }
  std::cout << "result kind=" << KindName(result.kind)
            << " state=done valid=" << int(result.valid)
            << " rounds=" << result.engine_rounds
            << " total_rounds=" << result.total_rounds
            << " messages=" << result.messages
            << " iterations=" << result.iterations
            << " digest=" << Hex(result.digest) << "\n";
  return 0;
}
