// treelocald: the resident solver daemon. Admits graphs once, keeps them
// resident, and coalesces concurrent solve requests into batched engine
// passes (see src/serve/). Speaks the TLD1 length-prefixed binary protocol
// on a localhost TCP port.
//
//   treelocald [--port P] [--threads T] [--max-batch B] [--slice R]
//              [--max-graphs G] [--max-graph-bytes BYTES]
//
// --port 0 (default) picks an ephemeral port and prints it; a wrapping
// script can parse the "listening on" line. Stops on SIGINT/SIGTERM or a
// client kShutdown request, draining in-flight work either way.

#include <csignal>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/serve/server.h"

namespace {

[[noreturn]] void Usage(const std::string& err) {
  if (!err.empty()) std::cerr << "error: " << err << "\n";
  std::cerr << "usage: treelocald [--port P] [--threads T] [--max-batch B] "
               "[--slice R] [--max-graphs G] [--max-graph-bytes BYTES]\n"
               "  --max-graphs / --max-graph-bytes bound resident graphs "
               "(0 = unlimited); idle\n  graphs are evicted LRU-first, and a "
               "registration that still cannot fit is\n  answered "
               "kRejected.\n";
  std::exit(err.empty() ? 0 : 2);
}

}  // namespace

int main(int argc, char** argv) {
  treelocal::serve::Server::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](int& idx) -> std::string {
      if (idx + 1 >= argc) Usage("missing value for " + a);
      return argv[++idx];
    };
    if (a == "--port") {
      opt.port = std::atoi(need(i).c_str());
    } else if (a == "--threads") {
      opt.engine_threads = std::atoi(need(i).c_str());
    } else if (a == "--max-batch") {
      opt.max_batch = std::atoi(need(i).c_str());
    } else if (a == "--slice") {
      opt.slice_rounds = std::atoi(need(i).c_str());
    } else if (a == "--max-graphs") {
      opt.max_graphs = std::strtoull(need(i).c_str(), nullptr, 10);
    } else if (a == "--max-graph-bytes") {
      opt.max_graph_bytes = std::strtoull(need(i).c_str(), nullptr, 10);
    } else if (a == "--help" || a == "-h") {
      Usage("");
    } else {
      Usage("unknown flag '" + a + "'");
    }
  }
  if (opt.max_batch < 1 || opt.slice_rounds < 1 || opt.engine_threads < 1) {
    Usage("--max-batch, --slice, and --threads must be >= 1");
  }

  // Route SIGINT/SIGTERM to a dedicated sigwait thread so shutdown runs on
  // a normal stack instead of inside a signal handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  treelocal::serve::Server server(opt);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "treelocald: " << error << "\n";
    return 1;
  }
  std::cout << "treelocald listening on 127.0.0.1:" << server.port()
            << " (threads=" << opt.engine_threads
            << " max-batch=" << opt.max_batch << " slice=" << opt.slice_rounds
            << ")" << std::endl;

  std::thread signal_thread([&] {
    int sig = 0;
    sigwait(&sigs, &sig);
    server.Stop();
  });

  const bool remote = server.Wait();
  // Wake the sigwait (no-op if a real signal already did) so the thread can
  // be joined before the server leaves scope.
  kill(getpid(), SIGTERM);
  signal_thread.join();
  server.Stop();
  std::cout << "treelocald: " << (remote ? "shutdown requested" : "stopped")
            << std::endl;
  return 0;
}
