// Experiment E12: the truly local complexity f(Delta) of the implemented
// base algorithms, measured directly — the function the whole
// transformation is parameterized by. For each Delta, run the base
// algorithm on bounded-degree trees at fixed n and report the f(Delta) term
// (sweep schedule length) and the log* term (Linial engine rounds)
// separately, plus f(Delta)/Delta^2 to exhibit the Theta~(Delta^2) shape.
//
// The baselines now run ENGINE-NATIVE (Linial over induced host ports +
// engine class sweep); every row is gated on bit-identity against the
// legacy host-side base and contributes its symmetry-breaking + sweep round
// trajectories and wall-clock speedup to BENCH_engine.json as source
// "bench_truly_local".
//
// Flags: --n_exp= (default 13), --logstar_max_exp= (default 18). CI smoke:
// --n_exp=11 --logstar_max_exp=13.
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/baseline.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/support/mathutil.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;
using bench::SameLabeling;

void EmitBaseTrajectories(bench::JsonWriter& json, const BaseRunStats& stats,
                          const std::vector<double>& sweep_seconds) {
  bench::EmitTrajectory(json, "linial", stats.linial_round_stats, {});
  bench::EmitTrajectory(json, "sweep", stats.sweep_round_stats,
                        sweep_seconds);
}

bool RunNodeF(int n_exp, bench::JsonWriter& json) {
  const int n = 1 << n_exp;
  MisProblem mis;
  bool all_identical = true;
  Table table({"Delta", "f(Delta)=classes", "logstar=linial", "total",
               "f/Delta^2", "speedup", "valid"});
  for (int delta : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
    Graph g = BoundedDegreeRandomTree(n, delta, 77 + delta);
    int d = g.MaxDegree();
    auto ids = DefaultIds(n, 78);
    local::Network net(g, ids);
    bench::EngineTimingRecorder::Arm(net);
    auto t0 = Clock::now();
    auto result = RunNodeBaseline(net, mis, bench::IdSpace(n));
    double engine_s = bench::SecondsSince(t0);
    t0 = Clock::now();
    auto legacy = RunNodeBaselineLegacy(mis, g, ids, bench::IdSpace(n));
    double legacy_s = bench::SecondsSince(t0);
    bool identical = SameLabeling(g, result.labeling, legacy.labeling) &&
                     result.rounds_total == legacy.rounds_total;
    all_identical &= identical;
    table.AddRow({Table::Num(d), Table::Num(result.stats.num_classes),
                  Table::Num(result.stats.linial_rounds),
                  Table::Num(result.rounds_total),
                  Table::Num(double(result.stats.num_classes) / (d * d), 2),
                  Table::Num(legacy_s / engine_s, 2),
                  (result.valid && identical) ? "yes" : "NO"});

    json.BeginRecord();
    json.Field("source", "bench_truly_local");
    json.Field("experiment", "node_base_f_delta");
    json.Field("n", n);
    json.Field("max_degree", d);
    json.Field("classes", result.stats.num_classes);
    json.Field("linial_rounds", result.stats.linial_rounds);
    json.Field("engine_seconds", engine_s);
    json.Field("legacy_seconds", legacy_s);
    json.Field("speedup", legacy_s / engine_s);
    json.Field("transcripts_identical", identical);
    json.Field("valid", result.valid);
    EmitBaseTrajectories(json, result.stats, net.round_seconds());
  }
  table.Print(
      "E12a: truly local complexity of the node base algorithm "
      "(MIS; engine-native, identity-gated; f(Delta) = Linial floor, log* "
      "term separate)");
  table.WriteCsv("bench_truly_local_node");
  table.WriteJson("bench_truly_local_node");
  return all_identical;
}

bool RunEdgeF(int n_exp, bench::JsonWriter& json) {
  const int n = 1 << n_exp;
  MatchingProblem mm;
  bool all_identical = true;
  Table table({"Delta", "edgeDeg", "f=classes", "2*linial", "total",
               "f/edgeDeg^2", "speedup", "valid"});
  for (int delta : {2, 3, 4, 6, 8, 12, 16, 24}) {
    Graph g = BoundedDegreeRandomTree(n, delta, 99 + delta);
    int ed = g.MaxEdgeDegree();
    auto ids = DefaultIds(n, 100);
    local::Network net(g, ids);
    bench::EngineTimingRecorder::Arm(net);
    auto t0 = Clock::now();
    auto result = RunEdgeBaseline(net, mm, bench::IdSpace(n));
    double engine_s = bench::SecondsSince(t0);
    t0 = Clock::now();
    auto legacy = RunEdgeBaselineLegacy(mm, g, ids, bench::IdSpace(n));
    double legacy_s = bench::SecondsSince(t0);
    bool identical = SameLabeling(g, result.labeling, legacy.labeling) &&
                     result.rounds_total == legacy.rounds_total;
    all_identical &= identical;
    table.AddRow({Table::Num(g.MaxDegree()), Table::Num(ed),
                  Table::Num(result.stats.num_classes),
                  Table::Num(result.stats.linial_rounds),
                  Table::Num(result.rounds_total),
                  Table::Num(double(result.stats.num_classes) / (ed * ed), 2),
                  Table::Num(legacy_s / engine_s, 2),
                  (result.valid && identical) ? "yes" : "NO"});

    json.BeginRecord();
    json.Field("source", "bench_truly_local");
    json.Field("experiment", "edge_base_f_delta");
    json.Field("n", n);
    json.Field("max_degree", g.MaxDegree());
    json.Field("max_edge_degree", ed);
    json.Field("classes", result.stats.num_classes);
    json.Field("linial_rounds", result.stats.linial_rounds);
    json.Field("engine_seconds", engine_s);
    json.Field("legacy_seconds", legacy_s);
    json.Field("speedup", legacy_s / engine_s);
    json.Field("transcripts_identical", identical);
    json.Field("valid", result.valid);
    EmitBaseTrajectories(json, result.stats, net.round_seconds());
  }
  table.Print(
      "E12b: truly local complexity of the edge base algorithm "
      "(matching via L(G); engine-native, identity-gated; f as a function "
      "of the edge-degree)");
  table.WriteCsv("bench_truly_local_edge");
  table.WriteJson("bench_truly_local_edge");
  return all_identical;
}

void RunLogStarTerm(int max_exp) {
  // The additive log* n term: fix Delta, grow n — the symmetry-breaking
  // rounds must stay (near-)constant while n grows by orders of magnitude.
  MisProblem mis;
  Table table({"n", "Delta", "linialRounds", "logstar(n^3)", "classes"});
  for (int n : bench::PowersOfTwo(8, max_exp)) {
    Graph g = BoundedDegreeRandomTree(n, 4, 55);
    auto ids = DefaultIds(n, 56);
    auto result = RunNodeBaseline(mis, g, ids, bench::IdSpace(n));
    table.AddRow({Table::Num(n), Table::Num(g.MaxDegree()),
                  Table::Num(result.stats.linial_rounds),
                  Table::Num(LogStar(std::pow(double(n), 3.0))),
                  Table::Num(result.stats.num_classes)});
  }
  table.Print("E12c: the additive log* n term at fixed Delta = 4");
  table.WriteCsv("bench_truly_local_logstar");
  table.WriteJson("bench_truly_local_logstar");
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  int n_exp = 13, logstar_max_exp = 18;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n_exp=", 0) == 0) {
      n_exp = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--logstar_max_exp=", 0) == 0) {
      logstar_max_exp = std::atoi(arg.c_str() + 18);
    } else {
      std::cerr << "bench_truly_local: unknown flag " << arg << "\n";
      return 1;
    }
  }
  if (n_exp < 8 || n_exp > 22 || logstar_max_exp < 8 ||
      logstar_max_exp > 24) {
    std::cerr << "bench_truly_local: exponents out of range\n";
    return 1;
  }
  treelocal::bench::JsonWriter json;
  bool ok = treelocal::RunNodeF(n_exp, json);
  ok &= treelocal::RunEdgeF(n_exp, json);
  treelocal::RunLogStarTerm(logstar_max_exp);
  json.MergeAs("bench_truly_local", "BENCH_engine.json");
  std::cout << "  wrote BENCH_engine.json\n";
  return ok ? 0 : 1;
}
