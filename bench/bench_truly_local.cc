// Experiment E12: the truly local complexity f(Delta) of the implemented
// base algorithms, measured directly — the function the whole
// transformation is parameterized by. For each Delta, run the base
// algorithm on bounded-degree trees at fixed n and report the f(Delta) term
// (sweep schedule length) and the log* term (Linial engine rounds)
// separately, plus f(Delta)/Delta^2 to exhibit the Theta~(Delta^2) shape.
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/baseline.h"
#include "src/graph/generators.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/support/mathutil.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

void RunNodeF() {
  const int n = 1 << 13;
  MisProblem mis;
  Table table({"Delta", "f(Delta)=classes", "logstar=linial", "total",
               "f/Delta^2", "valid"});
  for (int delta : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
    Graph g = BoundedDegreeRandomTree(n, delta, 77 + delta);
    int d = g.MaxDegree();
    auto ids = DefaultIds(n, 78);
    auto result = RunNodeBaseline(mis, g, ids, bench::IdSpace(n));
    table.AddRow({Table::Num(d), Table::Num(result.stats.num_classes),
                  Table::Num(result.stats.linial_rounds),
                  Table::Num(result.rounds_total),
                  Table::Num(double(result.stats.num_classes) / (d * d), 2),
                  result.valid ? "yes" : "NO"});
  }
  table.Print(
      "E12a: truly local complexity of the node base algorithm "
      "(MIS; f(Delta) = Linial floor, log* term separate)");
  table.WriteCsv("bench_truly_local_node");
  table.WriteJson("bench_truly_local_node");
}

void RunEdgeF() {
  const int n = 1 << 13;
  MatchingProblem mm;
  Table table({"Delta", "edgeDeg", "f=classes", "2*linial", "total",
               "f/edgeDeg^2", "valid"});
  for (int delta : {2, 3, 4, 6, 8, 12, 16, 24}) {
    Graph g = BoundedDegreeRandomTree(n, delta, 99 + delta);
    int ed = g.MaxEdgeDegree();
    auto ids = DefaultIds(n, 100);
    auto result = RunEdgeBaseline(mm, g, ids, bench::IdSpace(n));
    table.AddRow({Table::Num(g.MaxDegree()), Table::Num(ed),
                  Table::Num(result.stats.num_classes),
                  Table::Num(result.stats.linial_rounds),
                  Table::Num(result.rounds_total),
                  Table::Num(double(result.stats.num_classes) / (ed * ed), 2),
                  result.valid ? "yes" : "NO"});
  }
  table.Print(
      "E12b: truly local complexity of the edge base algorithm "
      "(matching via L(G); f as a function of the edge-degree)");
  table.WriteCsv("bench_truly_local_edge");
  table.WriteJson("bench_truly_local_edge");
}

void RunLogStarTerm() {
  // The additive log* n term: fix Delta, grow n — the symmetry-breaking
  // rounds must stay (near-)constant while n grows by orders of magnitude.
  MisProblem mis;
  Table table({"n", "Delta", "linialRounds", "logstar(n^3)", "classes"});
  for (int n : bench::PowersOfTwo(8, 18)) {
    Graph g = BoundedDegreeRandomTree(n, 4, 55);
    auto ids = DefaultIds(n, 56);
    auto result = RunNodeBaseline(mis, g, ids, bench::IdSpace(n));
    table.AddRow({Table::Num(n), Table::Num(g.MaxDegree()),
                  Table::Num(result.stats.linial_rounds),
                  Table::Num(LogStar(std::pow(double(n), 3.0))),
                  Table::Num(result.stats.num_classes)});
  }
  table.Print("E12c: the additive log* n term at fixed Delta = 4");
  table.WriteCsv("bench_truly_local_logstar");
  table.WriteJson("bench_truly_local_logstar");
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::RunNodeF();
  treelocal::RunEdgeF();
  treelocal::RunLogStarTerm();
  return 0;
}
