// Graph-backend comparison: the uncompressed CSR Graph vs CompactGraph
// (resident image) vs CompactGraph (mmap-opened file) under the same
// engine workload. For each size the three backends run rake-compress on
// the identical tree and the bench GATES on bit-identical transcripts —
// rounds, messages, and the folded digest chain — before reporting
// bytes/edge and the CSR compression ratio. A transcript mismatch is an
// exit-code failure (the numbers would be meaningless), which is how CI
// consumes this binary.
//
//   bench_graph_backend [--reps=R] [--ns=16384,65536,...] [--k=K]
//   bench_graph_backend --huge[=N]   # >= 10^8-edge streamed build + mmap solve
//
// The --huge mode is the out-of-core acceptance run: a recursive random
// tree is streamed through CompactGraph::Builder (never holding an edge
// list or a CSR), written to disk, mmap-opened, and solved. Memory is
// reported honestly in two parts: graph residency (RSS growth from
// opening + fully scanning the mapped image — the number bounded well
// below the CSR footprint) and the whole-process peak during the solve,
// which is dominated by engine mailbox state and would dwarf ANY graph
// backend.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <fstream>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/rake_compress.h"
#include "src/graph/compact_graph.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/graph_view.h"
#include "src/local/network.h"
#include "src/support/digest.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t FoldDigest(const std::vector<local::RoundStats>& stats) {
  uint64_t d = support::kDigestSeed;
  for (const auto& rs : stats) {
    d = support::ChainDigest(d, rs.active_nodes, rs.messages_sent, 0);
  }
  return d;
}

std::string HexDigest(uint64_t d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, d);
  return buf;
}

struct BackendRun {
  double seconds = 1e300;
  int rounds = 0;
  int64_t messages = 0;
  uint64_t digest = 0;
};

// Best-of-reps rake-compress on a caller-owned engine; the transcript
// fields come from the last run (they are identical across reps by the
// determinism contract, which the comparison below re-checks anyway).
BackendRun TimeBackend(local::Network& net, int k, int reps) {
  BackendRun r;
  RakeCompressResult res = RunRakeCompress(net, k);
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    res = RunRakeCompress(net, k);
    r.seconds = std::min(r.seconds, bench::SecondsSince(t0));
  }
  r.rounds = res.engine_rounds;
  r.messages = res.messages;
  r.digest = FoldDigest(res.round_stats);
  return r;
}

bool RunBackendComparison(int n, int k, int reps, bench::JsonWriter& json) {
  const Graph g = UniformRandomTree(n, 7);
  const std::vector<int64_t> ids = [&] {
    std::vector<int64_t> v(n);
    for (int i = 0; i < n; ++i) v[i] = i;
    return v;
  }();

  const CompactGraph compact = CompactGraph::FromGraph(g);
  const std::string path =
      "bench_graph_backend_" + std::to_string(n) + ".cgr";
  compact.WriteFile(path);
  const CompactGraph mapped = CompactGraph::OpenMapped(path);

  const int64_t m = g.NumEdges();
  const double bytes_per_edge =
      static_cast<double>(compact.MemoryBytes()) / static_cast<double>(m);
  const double ratio = static_cast<double>(g.MemoryBytes()) /
                       static_cast<double>(compact.MemoryBytes());

  local::Network csr_net(g, ids);
  local::Network compact_net(compact, ids);
  local::Network mapped_net(mapped, ids);
  const BackendRun csr = TimeBackend(csr_net, k, reps);
  const BackendRun ram = TimeBackend(compact_net, k, reps);
  const BackendRun map = TimeBackend(mapped_net, k, reps);

  const bool identical =
      csr.rounds == ram.rounds && csr.rounds == map.rounds &&
      csr.messages == ram.messages && csr.messages == map.messages &&
      csr.digest == ram.digest && csr.digest == map.digest;

  json.BeginRecord();
  json.Field("source", "bench_graph_backend");
  json.Field("experiment", "compact_backend");
  json.Field("family", "uniform-random");
  json.Field("n", n);
  json.Field("edges", m);
  json.Field("k", k);
  json.Field("csr_bytes", static_cast<int64_t>(g.MemoryBytes()));
  json.Field("cgr_bytes", static_cast<int64_t>(compact.MemoryBytes()));
  json.Field("compact_bytes_per_edge", bytes_per_edge);
  json.Field("compact_ratio", ratio);
  json.Field("csr_seconds", csr.seconds);
  json.Field("compact_seconds", ram.seconds);
  json.Field("mapped_seconds", map.seconds);
  json.Field("rounds", csr.rounds);
  json.Field("messages", csr.messages);
  json.Field("digest", HexDigest(csr.digest));
  json.Field("transcripts_identical", identical);
  json.Field("peak_rss_bytes", bench::PeakRssBytes());

  std::cout << "n=" << n << " m=" << m << "  " << bytes_per_edge
            << " bytes/edge (csr/" << ratio << ")  csr " << csr.seconds
            << " s  compact " << ram.seconds << " s  mapped " << map.seconds
            << " s  identical=" << (identical ? "yes" : "NO (BUG)")
            << "  digest=" << HexDigest(csr.digest) << "\n";
  std::remove(path.c_str());
  return identical;
}

// Streamed out-of-core acceptance: recursive random trees stream with O(1)
// generator state, and their edges (parent < child) arrive as arcs we sort
// once — the only O(m) transient — before feeding the builder, which holds
// the growing COMPRESSED image, never a CSR.
bool RunHuge(int64_t n, int k, bench::JsonWriter& json) {
  std::cout << "huge: streaming recursive tree n=" << n << "\n";
  const auto t_build = Clock::now();
  std::vector<uint64_t> arcs;
  arcs.reserve(2 * (n - 1));
  MakeTreeStreamed(TreeFamily::kRecursive, static_cast<int>(n), 42,
                   [&](int u, int v) {
                     arcs.push_back(static_cast<uint64_t>(u) << 32 |
                                    static_cast<uint32_t>(v));
                     arcs.push_back(static_cast<uint64_t>(v) << 32 |
                                    static_cast<uint32_t>(u));
                   });
  std::sort(arcs.begin(), arcs.end());
  CompactGraph::Builder builder(n);
  for (const uint64_t a : arcs) {
    builder.AddArc(static_cast<int64_t>(a >> 32),
                   static_cast<int64_t>(a & 0xffffffffu));
  }
  arcs.clear();
  arcs.shrink_to_fit();
  const std::string image = builder.FinishImage();
  const int64_t cgr_bytes = static_cast<int64_t>(image.size());
  const std::string path = "bench_graph_backend_huge.cgr";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    if (!out) {
      std::cerr << "bench_graph_backend: cannot write " << path << "\n";
      return false;
    }
  }
  const double build_seconds = bench::SecondsSince(t_build);

  // Graph residency: RSS growth from mmap-opening the file and faulting
  // the whole adjacency stream in via a full edge scan. This is the
  // apples-to-apples number against the CSR footprint a Graph would pin.
  const int64_t m = n - 1;
  const int64_t csr_bytes = 4 * ((n + 1) + 2 * m + 2 * m + m + m);
  const int64_t rss_before_open = bench::CurrentRssBytes();
  const auto t_open = Clock::now();
  const CompactGraph mapped = CompactGraph::OpenMapped(path);
  const double open_seconds = bench::SecondsSince(t_open);
  int64_t scanned_edges = 0;
  mapped.ForEachEdge([&](int64_t, int, int) { ++scanned_edges; });
  const int64_t graph_rss_bytes =
      bench::CurrentRssBytes() - rss_before_open;
  if (scanned_edges != m) {
    std::cerr << "bench_graph_backend: scan saw " << scanned_edges
              << " edges, expected " << m << "\n";
    std::remove(path.c_str());
    return false;
  }

  std::cout << "  built+wrote in " << build_seconds << " s, " << cgr_bytes
            << " bytes (" << static_cast<double>(cgr_bytes) / m
            << " bytes/edge vs csr " << csr_bytes
            << "); open " << open_seconds << " s, graph residency "
            << graph_rss_bytes << " bytes after full scan\n";

  const auto t_solve = Clock::now();
  std::vector<int64_t> ids(n);
  for (int64_t i = 0; i < n; ++i) ids[i] = i;
  local::Network net(mapped, ids);
  const RakeCompressResult res = RunRakeCompress(net, k);
  const double solve_seconds = bench::SecondsSince(t_solve);
  const uint64_t digest = FoldDigest(res.round_stats);

  json.BeginRecord();
  // Distinct source: the huge run must not displace the identity-gated
  // small-n records when MergeAs replaces same-source records.
  json.Field("source", "bench_graph_backend_huge");
  json.Field("experiment", "compact_backend_huge");
  json.Field("family", "recursive");
  json.Field("n", n);
  json.Field("edges", m);
  json.Field("k", k);
  json.Field("csr_bytes", csr_bytes);
  json.Field("cgr_bytes", cgr_bytes);
  json.Field("compact_bytes_per_edge",
             static_cast<double>(cgr_bytes) / static_cast<double>(m));
  json.Field("compact_ratio",
             static_cast<double>(csr_bytes) / static_cast<double>(cgr_bytes));
  json.Field("build_seconds", build_seconds);
  json.Field("open_seconds", open_seconds);
  json.Field("graph_rss_bytes", graph_rss_bytes);
  json.Field("solve_seconds", solve_seconds);
  json.Field("rounds", res.engine_rounds);
  json.Field("messages", res.messages);
  json.Field("digest", HexDigest(digest));
  // Whole-process peak: dominated by engine mailboxes/ids (O(n) engine
  // state), NOT the graph backend — recorded so the residency claim above
  // cannot be mistaken for a solve-memory claim.
  json.Field("solve_peak_rss_bytes", bench::PeakRssBytes());

  std::cout << "  solved: rounds=" << res.engine_rounds
            << " messages=" << res.messages << " digest=" << HexDigest(digest)
            << " in " << solve_seconds
            << " s (process peak RSS " << bench::PeakRssBytes() << ")\n";
  std::remove(path.c_str());
  return true;
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  int reps = 3;
  int k = 3;
  std::vector<int> ns = {1 << 14, 1 << 16, 1 << 20};
  bool huge = false;
  int64_t huge_n = 100000001;  // 10^8 edges
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--k=", 0) == 0) {
      k = std::atoi(arg.c_str() + 4);
      if (k < 2) {
        std::cerr << "bench_graph_backend: --k must be >= 2\n";
        return 1;
      }
    } else if (arg.rfind("--ns=", 0) == 0) {
      ns.clear();
      std::stringstream ss(arg.substr(5));
      std::string item;
      while (std::getline(ss, item, ',')) {
        const int n = std::atoi(item.c_str());
        if (n < 2) {
          std::cerr << "bench_graph_backend: every n must be >= 2\n";
          return 1;
        }
        ns.push_back(n);
      }
    } else if (arg == "--huge" || arg.rfind("--huge=", 0) == 0) {
      huge = true;
      if (arg.size() > 7) huge_n = std::strtoll(arg.c_str() + 7, nullptr, 10);
      if (huge_n < 2 || huge_n > INT32_MAX) {
        std::cerr << "bench_graph_backend: --huge needs 2 <= n <= 2^31-1\n";
        return 1;
      }
    } else {
      std::cerr << "bench_graph_backend: unknown flag " << arg << "\n";
      return 1;
    }
  }

  treelocal::bench::JsonWriter json;
  bool ok = true;
  if (huge) {
    ok = treelocal::RunHuge(huge_n, k, json);
  } else {
    for (const int n : ns) {
      ok &= treelocal::RunBackendComparison(n, k, reps, json);
    }
  }
  json.MergeAs(huge ? "bench_graph_backend_huge" : "bench_graph_backend",
               "BENCH_engine.json");
  std::cout << "  wrote BENCH_engine.json\n";
  return ok ? 0 : 1;
}
