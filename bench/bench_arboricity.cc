// Experiment E9 (Theorem 3 / 15, arboricity form): (edge-degree+1)-edge
// coloring on graphs of arboricity a — unions of a random forests plus
// planar grid workloads. The round count should scale as O(a + f(g) + ...)
// with an additive-in-a gather term, and stay valid throughout.
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/complexity.h"
#include "src/core/transform_edge.h"
#include "src/graph/generators.h"
#include "src/problems/edge_coloring.h"
#include "src/problems/matching.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

void RunArboricitySweep() {
  const int n = 1 << 14;
  Table table({"graph", "a", "k", "rounds", "decomp", "base", "split",
               "gather", "atypicalEdges", "valid"});
  for (int a : {1, 2, 3, 4, 5, 6, 8}) {
    Graph g = ForestUnion(n, a, 100 + a);
    auto ids = DefaultIds(g.NumNodes(), 7);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                g.MaxDegree());
    int k = std::max(5 * a, ChooseK(n, QuadraticF()));
    auto result = SolveEdgeProblemBoundedArboricity(problem, g, ids,
                                                    bench::IdSpace(n), a, k);
    table.AddRow({"union-a" + std::to_string(a), Table::Num(a), Table::Num(k),
                  Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_split),
                  Table::Num(result.rounds_gather),
                  Table::Num(result.num_atypical),
                  result.valid ? "yes" : "NO"});
  }
  table.Print("E9a: arboricity sweep, (edge-degree+1)-edge coloring");
  table.WriteCsv("bench_arboricity_sweep");
  table.WriteJson("bench_arboricity_sweep");
}

void RunPlanar() {
  // Theorem 3's punchline for constant arboricity: planar-style graphs.
  Table table({"graph", "n", "a", "k", "rounds", "decomp", "base", "split",
               "gather", "valid"});
  struct W {
    std::string name;
    Graph graph;
    int a;
  };
  std::vector<W> workloads;
  for (int side : {32, 64, 128, 256}) {
    workloads.push_back({"grid", Grid(side, side), 2});
    workloads.push_back({"trigrid", TriangulatedGrid(side, side), 3});
  }
  for (auto& w : workloads) {
    auto ids = DefaultIds(w.graph.NumNodes(), 8);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                w.graph.MaxDegree());
    int k =
        std::max(5 * w.a, ChooseK(w.graph.NumNodes(), QuadraticF()));
    auto result = SolveEdgeProblemBoundedArboricity(
        problem, w.graph, ids, bench::IdSpace(w.graph.NumNodes()), w.a, k);
    table.AddRow({w.name, Table::Num(w.graph.NumNodes()), Table::Num(w.a),
                  Table::Num(k), Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_split),
                  Table::Num(result.rounds_gather),
                  result.valid ? "yes" : "NO"});
  }
  table.Print("E9b: planar-style graphs (constant arboricity)");
  table.WriteCsv("bench_arboricity_planar");
  table.WriteJson("bench_arboricity_planar");
}

void RunMatchingArboricity() {
  const int n = 1 << 13;
  MatchingProblem mm;
  Table table({"a", "k", "rounds", "gather(=12a)", "valid"});
  for (int a : {1, 2, 3, 5, 8}) {
    Graph g = ForestUnion(n, a, 200 + a);
    auto ids = DefaultIds(g.NumNodes(), 9);
    int k = std::max(5 * a, ChooseK(n, QuadraticF()));
    auto result =
        SolveEdgeProblemBoundedArboricity(mm, g, ids, bench::IdSpace(n), a, k);
    table.AddRow({Table::Num(a), Table::Num(k),
                  Table::Num(result.rounds_total),
                  Table::Num(result.rounds_gather),
                  result.valid ? "yes" : "NO"});
  }
  table.Print("E9c: maximal matching across arboricity (additive O(a) term)");
  table.WriteCsv("bench_arboricity_matching");
  table.WriteJson("bench_arboricity_matching");
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::RunArboricitySweep();
  treelocal::RunPlanar();
  treelocal::RunMatchingArboricity();
  return 0;
}
