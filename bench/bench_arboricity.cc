// Experiment E9 (Theorem 3 / 15, arboricity form): (edge-degree+1)-edge
// coloring on graphs of arboricity a — unions of a random forests plus
// planar grid workloads. The round count should scale as O(a + f(g) + ...)
// with an additive-in-a gather term, and stay valid throughout.
//
// The arboricity sweep runs the ENGINE-NATIVE pipeline on an explicit,
// timing-armed host engine, gated on bit-identity against the legacy path
// (exit non-zero on divergence), and merges per-phase round trajectories +
// speedups into BENCH_engine.json as source "bench_arboricity". This is
// where the fused multi-forest Cole-Vishkin earns its keep: legacy phase 3
// rebuilt a Subgraph per forest (2a of them).
//
// Flags: --n_exp= (sweep size, default 14), --planar_max_side= (default
// 256), --match_exp= (default 13). CI smoke: --n_exp=11 --planar_max_side=64
// --match_exp=10.
#include <chrono>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/complexity.h"
#include "src/core/transform_edge.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/problems/edge_coloring.h"
#include "src/problems/matching.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;
using bench::EmitTrajectory;
using bench::SameLabeling;

bool RunArboricitySweep(int n_exp, bench::JsonWriter& json) {
  const int n = 1 << n_exp;
  bool all_identical = true;
  Table table({"graph", "a", "k", "rounds", "decomp", "base", "split",
               "gather", "atypicalEdges", "speedup", "valid"});
  for (int a : {1, 2, 3, 4, 5, 6, 8}) {
    Graph g = ForestUnion(n, a, 100 + a);
    auto ids = DefaultIds(g.NumNodes(), 7);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                g.MaxDegree());
    int k = std::max(5 * a, ChooseK(n, QuadraticF()));

    local::Network net(g, ids);
    bench::EngineTimingRecorder::Arm(net);
    auto t0 = Clock::now();
    auto result = SolveEdgeProblemBoundedArboricity(problem, net,
                                                    bench::IdSpace(n), a, k);
    double engine_s = bench::SecondsSince(t0);
    t0 = Clock::now();
    auto legacy = SolveEdgeProblemBoundedArboricityLegacy(
        problem, g, ids, bench::IdSpace(n), a, k);
    double legacy_s = bench::SecondsSince(t0);
    bool identical = SameLabeling(g, result.labeling, legacy.labeling) &&
                     result.rounds_total == legacy.rounds_total;
    all_identical &= identical;

    table.AddRow({"union-a" + std::to_string(a), Table::Num(a), Table::Num(k),
                  Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_split),
                  Table::Num(result.rounds_gather),
                  Table::Num(result.num_atypical),
                  Table::Num(legacy_s / engine_s, 2),
                  (result.valid && identical) ? "yes" : "NO"});

    json.BeginRecord();
    json.Field("source", "bench_arboricity");
    json.Field("experiment", "arboricity_pipeline");
    json.Field("n", g.NumNodes());
    json.Field("a", a);
    json.Field("k", k);
    json.Field("atypical_edges", result.num_atypical);
    json.Field("rounds", result.rounds_total);
    json.Field("engine_seconds", engine_s);
    json.Field("legacy_seconds", legacy_s);
    json.Field("speedup", legacy_s / engine_s);
    json.Field("transcripts_identical", identical);
    json.Field("valid", result.valid);
    EmitTrajectory(json, "decomp", result.decomposition.round_stats,
                   result.round_seconds_decomposition);
    EmitTrajectory(json, "base_sweep", result.base_stats.sweep_round_stats,
                   result.round_seconds_base_sweep);
    EmitTrajectory(json, "split", result.split.round_stats,
                   result.round_seconds_split);
  }
  table.Print(
      "E9a: arboricity sweep, (edge-degree+1)-edge coloring "
      "(engine-native, identity-gated)");
  table.WriteCsv("bench_arboricity_sweep");
  table.WriteJson("bench_arboricity_sweep");
  return all_identical;
}

void RunPlanar(int max_side) {
  // Theorem 3's punchline for constant arboricity: planar-style graphs.
  Table table({"graph", "n", "a", "k", "rounds", "decomp", "base", "split",
               "gather", "valid"});
  struct W {
    std::string name;
    Graph graph;
    int a;
  };
  std::vector<W> workloads;
  for (int side : {32, 64, 128, 256}) {
    if (side > max_side) continue;
    workloads.push_back({"grid", Grid(side, side), 2});
    workloads.push_back({"trigrid", TriangulatedGrid(side, side), 3});
  }
  for (auto& w : workloads) {
    auto ids = DefaultIds(w.graph.NumNodes(), 8);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                w.graph.MaxDegree());
    int k =
        std::max(5 * w.a, ChooseK(w.graph.NumNodes(), QuadraticF()));
    auto result = SolveEdgeProblemBoundedArboricity(
        problem, w.graph, ids, bench::IdSpace(w.graph.NumNodes()), w.a, k);
    table.AddRow({w.name, Table::Num(w.graph.NumNodes()), Table::Num(w.a),
                  Table::Num(k), Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_split),
                  Table::Num(result.rounds_gather),
                  result.valid ? "yes" : "NO"});
  }
  table.Print("E9b: planar-style graphs (constant arboricity)");
  table.WriteCsv("bench_arboricity_planar");
  table.WriteJson("bench_arboricity_planar");
}

void RunMatchingArboricity(int match_exp) {
  const int n = 1 << match_exp;
  MatchingProblem mm;
  Table table({"a", "k", "rounds", "gather(=12a)", "valid"});
  for (int a : {1, 2, 3, 5, 8}) {
    Graph g = ForestUnion(n, a, 200 + a);
    auto ids = DefaultIds(g.NumNodes(), 9);
    int k = std::max(5 * a, ChooseK(n, QuadraticF()));
    auto result =
        SolveEdgeProblemBoundedArboricity(mm, g, ids, bench::IdSpace(n), a, k);
    table.AddRow({Table::Num(a), Table::Num(k),
                  Table::Num(result.rounds_total),
                  Table::Num(result.rounds_gather),
                  result.valid ? "yes" : "NO"});
  }
  table.Print("E9c: maximal matching across arboricity (additive O(a) term)");
  table.WriteCsv("bench_arboricity_matching");
  table.WriteJson("bench_arboricity_matching");
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  int n_exp = 14, planar_max_side = 256, match_exp = 13;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n_exp=", 0) == 0) {
      n_exp = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--planar_max_side=", 0) == 0) {
      planar_max_side = std::atoi(arg.c_str() + 18);
    } else if (arg.rfind("--match_exp=", 0) == 0) {
      match_exp = std::atoi(arg.c_str() + 12);
    } else {
      std::cerr << "bench_arboricity: unknown flag " << arg << "\n";
      return 1;
    }
  }
  if (n_exp < 8 || n_exp > 22 || match_exp < 8 || match_exp > 22) {
    std::cerr << "bench_arboricity: exponents out of range\n";
    return 1;
  }
  treelocal::bench::JsonWriter json;
  bool ok = treelocal::RunArboricitySweep(n_exp, json);
  treelocal::RunPlanar(planar_max_side);
  treelocal::RunMatchingArboricity(match_exp);
  json.MergeAs("bench_arboricity", "BENCH_engine.json");
  std::cout << "  wrote BENCH_engine.json\n";
  return ok ? 0 : 1;
}
