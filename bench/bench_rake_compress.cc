// Experiments E1-E3 (Lemmas 9, 10, 11): rake-and-compress invariants,
// measured against the paper's bounds across tree families, n, and k.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/rake_compress.h"
#include "src/graph/algorithms.h"
#include "src/local/network.h"
#include "src/graph/generators.h"
#include "src/support/mathutil.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

void Run() {
  Table table({"family", "n", "k", "iters", "iterBound(L9)", "maxDegTC",
               "k(L10)", "maxDiamTR", "diamBound(L11)", "rounds"});
  bench::JsonWriter json;
  std::vector<TreeFamily> families = {
      TreeFamily::kUniform, TreeFamily::kBalanced3, TreeFamily::kPath,
      TreeFamily::kStar, TreeFamily::kCaterpillar};
  for (TreeFamily family : families) {
    for (int n : bench::PowersOfTwo(10, 17)) {
      for (int k : {2, 4, 16}) {
        Graph tree = MakeTree(family, n, 42);
        auto ids = DefaultIds(tree.NumNodes(), 43);
        // Explicit engine so the per-round wall-clock trajectory rides
        // along with the active-count curve (EngineTimingRecorder is the
        // shared arming/capture path of all drivers).
        local::Network net(tree, ids);
        bench::EngineTimingRecorder::Arm(net);
        auto result = RunRakeCompress(net, k);
        std::vector<double> round_seconds =
            bench::EngineTimingRecorder::Capture(net);

        // Lemma 10 observable: degree of T_C's underlying graph.
        std::vector<int> c_degree(tree.NumNodes(), 0);
        for (int e = 0; e < tree.NumEdges(); ++e) {
          auto [u, v] = tree.Endpoints(e);
          if (result.compressed[u] && result.compressed[v]) {
            ++c_degree[u];
            ++c_degree[v];
          }
        }
        int max_deg_tc =
            *std::max_element(c_degree.begin(), c_degree.end());

        // Lemma 11 observable: max raked component diameter.
        std::vector<char> raked(tree.NumNodes(), 0);
        for (int v = 0; v < tree.NumNodes(); ++v) {
          raked[v] = !result.compressed[v];
        }
        int num = 0;
        auto comp = MaskedComponents(tree, raked, &num);
        auto diam = MaskedTreeComponentDiameters(tree, raked, comp, num);
        int max_diam = 0;
        for (int d : diam) max_diam = std::max(max_diam, d);
        double logk_n = LogBase(std::max(2, tree.NumNodes()), k);
        int diam_bound = static_cast<int>(4 * (logk_n + 1) + 2);

        table.AddRow({TreeFamilyName(family), Table::Num(tree.NumNodes()),
                      Table::Num(k), Table::Num(result.num_iterations),
                      Table::Num(RakeCompressIterationBound(tree.NumNodes(), k)),
                      Table::Num(max_deg_tc), Table::Num(k),
                      Table::Num(max_diam), Table::Num(diam_bound),
                      Table::Num(result.engine_rounds)});

        // Machine-readable perf trajectory: the engine's per-round active
        // set and message volume, which the round cost must track.
        std::vector<int64_t> active, sent;
        for (const auto& rs : result.round_stats) {
          active.push_back(rs.active_nodes);
          sent.push_back(rs.messages_sent);
        }
        json.BeginRecord();
        json.Field("source", "bench_rake_compress");
        json.Field("family", TreeFamilyName(family));
        json.Field("n", tree.NumNodes());
        json.Field("k", k);
        json.Field("iterations", result.num_iterations);
        json.Field("rounds", result.engine_rounds);
        json.Field("messages", result.messages);
        json.Field("round_active_nodes", active);
        json.Field("round_messages", sent);
        json.Field("round_seconds", round_seconds);
      }
    }
  }
  table.Print(
      "E1-E3: Algorithm 1 (rake-and-compress) vs Lemmas 9/10/11 bounds");
  table.WriteCsv("bench_rake_compress");
  json.MergeAs("bench_rake_compress", "BENCH_engine.json");
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::Run();
  return 0;
}
