// Experiment E6 (Theorem 12): MIS and (deg+1)-coloring on trees via the
// transformation with k = g(n), against the direct base algorithm (whose
// cost is driven by the input Delta) and the Theta(log n / log log n)
// reference shape the tight bounds for MIS predict on trees.
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/baseline.h"
#include "src/core/complexity.h"
#include "src/core/rake_compress.h"
#include "src/core/transform_node.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/problems/coloring.h"
#include "src/problems/mis.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

// Returns false if any re-timed decomposition trajectory failed to
// reproduce the pipeline's (a determinism bug); main fails the run on it.
bool RunProblem(const NodeProblem& problem, const std::string& title,
                const std::string& csv, bench::JsonWriter& json) {
  Table table({"family", "n", "Delta", "k=g(n)", "rounds", "decomp", "base",
               "gather", "baselineRounds", "logn/loglogn", "valid"});
  bool all_reproduced = true;
  for (TreeFamily family :
       {TreeFamily::kUniform, TreeFamily::kBalanced3, TreeFamily::kRecursive}) {
    for (int n : bench::PowersOfTwo(10, 18)) {
      Graph tree = MakeTree(family, n, 5);
      auto ids = DefaultIds(tree.NumNodes(), 6);
      int64_t space = bench::IdSpace(tree.NumNodes());
      // Our base algorithms have f(Delta) ~ Delta^2 (up to log factors).
      int k = ChooseK(tree.NumNodes(), QuadraticF());

      auto transformed =
          SolveNodeProblemOnTree(problem, tree, ids, space, k);
      auto baseline = RunNodeBaseline(problem, tree, ids, space);

      table.AddRow(
          {TreeFamilyName(family), Table::Num(tree.NumNodes()),
           Table::Num(tree.MaxDegree()), Table::Num(k),
           Table::Num(transformed.rounds_total),
           Table::Num(transformed.rounds_decomposition),
           Table::Num(transformed.rounds_base),
           Table::Num(transformed.rounds_gather),
           Table::Num(baseline.rounds_total),
           Table::Num(BarrierLogOverLogLog(tree.NumNodes()), 1),
           (transformed.valid && baseline.valid) ? "yes" : "NO"});

      // Per-phase engine trajectory. Phase 1 dominates the engine cost and
      // carries a full round trajectory; a separate timed engine run
      // (rake-compress is deterministic, so its transcript must equal the
      // one SolveNodeProblemOnTree just produced — checked below and
      // gated via the exit code) supplies the wall-clock curve. Phases
      // 2-3 contribute scalar round/message costs: the base phase's
      // engine work is folded into accounted helpers and the gather is
      // analytic, so neither has a per-round curve to emit.
      local::Network net(tree, ids);
      bench::EngineTimingRecorder::Arm(net);
      RakeCompressResult timed = RunRakeCompress(net, k);
      std::vector<double> decomp_seconds =
          bench::EngineTimingRecorder::Capture(net);
      std::vector<int64_t> active, sent;
      for (const auto& rs : transformed.rake_compress.round_stats) {
        active.push_back(rs.active_nodes);
        sent.push_back(rs.messages_sent);
      }
      const bool trajectory_matches =
          timed.round_stats == transformed.rake_compress.round_stats;
      all_reproduced &= trajectory_matches;

      json.BeginRecord();
      json.Field("source", "bench_thm12_node");
      json.Field("experiment", csv);
      json.Field("family", TreeFamilyName(family));
      json.Field("n", tree.NumNodes());
      json.Field("k", k);
      json.Field("rounds_total", transformed.rounds_total);
      json.Field("rounds_decomposition", transformed.rounds_decomposition);
      json.Field("rounds_base", transformed.rounds_base);
      json.Field("rounds_gather", transformed.rounds_gather);
      json.Field("engine_messages", transformed.engine_messages);
      json.Field("base_linial_rounds", transformed.base_stats.linial_rounds);
      json.Field("base_messages", transformed.base_stats.messages);
      json.Field("decomp_round_active_nodes", active);
      json.Field("decomp_round_messages", sent);
      json.Field("decomp_round_seconds", decomp_seconds);
      json.Field("decomp_trajectory_reproduced", trajectory_matches);
    }
  }
  table.Print(title);
  table.WriteCsv(csv);
  table.WriteJson(csv);
  return all_reproduced;
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::bench::JsonWriter json;
  treelocal::MisProblem mis;
  bool ok = treelocal::RunProblem(
      mis, "E6a: Theorem 12 on MIS (transformed vs direct base algorithm)",
      "bench_thm12_mis", json);
  treelocal::ColoringProblem coloring(
      treelocal::ColoringProblem::Mode::kDegPlusOne, 0);
  ok &= treelocal::RunProblem(
      coloring,
      "E6b: Theorem 12 on (deg+1)-coloring (transformed vs direct)",
      "bench_thm12_coloring", json);
  json.MergeAs("bench_thm12_node", "BENCH_engine.json");
  if (!ok) {
    std::cerr << "bench_thm12_node: decomposition trajectory failed to "
                 "reproduce (determinism bug)\n";
  }
  return ok ? 0 : 1;
}
