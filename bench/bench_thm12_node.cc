// Experiment E6 (Theorem 12): MIS and (deg+1)-coloring on trees via the
// transformation with k = g(n), against the direct base algorithm (whose
// cost is driven by the input Delta) and the Theta(log n / log log n)
// reference shape the tight bounds for MIS predict on trees.
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/baseline.h"
#include "src/core/complexity.h"
#include "src/core/transform_node.h"
#include "src/graph/generators.h"
#include "src/problems/coloring.h"
#include "src/problems/mis.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

void RunProblem(const NodeProblem& problem, const std::string& title,
                const std::string& csv) {
  Table table({"family", "n", "Delta", "k=g(n)", "rounds", "decomp", "base",
               "gather", "baselineRounds", "logn/loglogn", "valid"});
  for (TreeFamily family :
       {TreeFamily::kUniform, TreeFamily::kBalanced3, TreeFamily::kRecursive}) {
    for (int n : bench::PowersOfTwo(10, 18)) {
      Graph tree = MakeTree(family, n, 5);
      auto ids = DefaultIds(tree.NumNodes(), 6);
      int64_t space = bench::IdSpace(tree.NumNodes());
      // Our base algorithms have f(Delta) ~ Delta^2 (up to log factors).
      int k = ChooseK(tree.NumNodes(), QuadraticF());

      auto transformed =
          SolveNodeProblemOnTree(problem, tree, ids, space, k);
      auto baseline = RunNodeBaseline(problem, tree, ids, space);

      table.AddRow(
          {TreeFamilyName(family), Table::Num(tree.NumNodes()),
           Table::Num(tree.MaxDegree()), Table::Num(k),
           Table::Num(transformed.rounds_total),
           Table::Num(transformed.rounds_decomposition),
           Table::Num(transformed.rounds_base),
           Table::Num(transformed.rounds_gather),
           Table::Num(baseline.rounds_total),
           Table::Num(BarrierLogOverLogLog(tree.NumNodes()), 1),
           (transformed.valid && baseline.valid) ? "yes" : "NO"});
    }
  }
  table.Print(title);
  table.WriteCsv(csv);
  table.WriteJson(csv);
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::MisProblem mis;
  treelocal::RunProblem(
      mis, "E6a: Theorem 12 on MIS (transformed vs direct base algorithm)",
      "bench_thm12_mis");
  treelocal::ColoringProblem coloring(
      treelocal::ColoringProblem::Mode::kDegPlusOne, 0);
  treelocal::RunProblem(
      coloring,
      "E6b: Theorem 12 on (deg+1)-coloring (transformed vs direct)",
      "bench_thm12_coloring");
  return 0;
}
