// Experiment E11: google-benchmark microbenchmarks of the substrate — the
// LOCAL engine's round throughput, Linial color reduction, Cole-Vishkin,
// rake-and-compress, and line-graph construction. These quantify the cost
// of *simulating* a round, not the LOCAL round complexity itself.
//
// In addition to the microbenchmarks, main() runs the engine acceptance
// measurement: optimized vs reference engine on a million-node rake-compress
// (same algorithm, same transcript), writing the machine-readable trajectory
// to BENCH_engine.json — total speedup plus the per-round (active nodes,
// cost) series showing the optimized engine's round cost tracks the live
// node count rather than n.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "src/algos/cole_vishkin.h"
#include "src/algos/linial.h"
#include "src/core/decomposition.h"
#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/graph/linegraph.h"
#include "src/local/network.h"
#include "src/local/reference_network.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

class BroadcastK : public local::Algorithm {
 public:
  explicit BroadcastK(int rounds) : rounds_(rounds) {}
  void OnRound(local::NodeContext& ctx) override {
    if (ctx.round() >= rounds_) {
      ctx.Halt();
      return;
    }
    ctx.Broadcast(local::Message::Of(ctx.round()));
  }

 private:
  int rounds_;
};

void BM_EngineBroadcastRounds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = UniformRandomTree(n, 1);
  auto ids = DefaultIds(n, 2);
  // One engine for the whole benchmark: Run is reusable with no
  // reallocation, so this measures round throughput, not allocator traffic.
  local::Network net(g, ids);
  for (auto _ : state) {
    BroadcastK alg(10);
    benchmark::DoNotOptimize(net.Run(alg, 20));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{10} * n);
}
BENCHMARK(BM_EngineBroadcastRounds)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EngineBroadcastRoundsReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = UniformRandomTree(n, 1);
  auto ids = DefaultIds(n, 2);
  local::ReferenceNetwork net(g, ids);
  for (auto _ : state) {
    BroadcastK alg(10);
    benchmark::DoNotOptimize(net.Run(alg, 20));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{10} * n);
}
BENCHMARK(BM_EngineBroadcastRoundsReference)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17);

void BM_Linial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = BoundedDegreeRandomTree(n, 8, 3);
  auto ids = DefaultIds(n, 4);
  int64_t space = int64_t{n} * n * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLinial(g, ids, space));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Linial)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_ColeVishkin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = Path(n);
  auto ids = DefaultIds(n, 5);
  std::vector<int> parent(n, -1);
  for (int v = 1; v < n; ++v) parent[v] = v - 1;
  int64_t space = int64_t{n} * n * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColeVishkin3Color(g, ids, parent, space));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColeVishkin)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_RakeCompress(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = UniformRandomTree(n, 6);
  auto ids = DefaultIds(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRakeCompress(g, ids, 4));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RakeCompress)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_Decomposition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = ForestUnion(n, 3, 8);
  auto ids = DefaultIds(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDecomposition(g, ids, 3, 6, 15));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Decomposition)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16);

void BM_BuildLineGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = BoundedDegreeRandomTree(n, 6, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildLineGraph(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_BuildLineGraph)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16);

void BM_UniformRandomTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(UniformRandomTree(n, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UniformRandomTree)->Arg(1 << 10)->Arg(1 << 16);

// Engine acceptance measurement: one million-node rake-compress, optimized
// vs reference engine. Writes BENCH_engine.json and prints a summary.
// Returns false if the two engines' transcripts diverged (a bug).
bool MeasureRakeCompress(const std::string& family, const Graph& tree,
                         const std::vector<int64_t>& ids, int k,
                         bench::JsonWriter& json) {
  using Clock = std::chrono::steady_clock;
  const int n = tree.NumNodes();
  const int kReps = 3;  // min-of-N: robust against scheduler noise
  std::cout << "Engine acceptance: rake-compress on a " << n << "-node "
            << family << " tree, k=" << k << "\n";

  // Both engines are constructed once and reused (the optimized engine's
  // Run is reallocation-free by design; the reference engine refills its
  // mailboxes but reuses the buffers), so min-of-N measures round
  // throughput, not allocator or page-fault traffic. One shared protocol
  // (warmup + best-of-kReps) so the two sides can never diverge. Round
  // timing goes through the shared EngineTimingRecorder: engines without
  // the timing surface yield an empty trajectory.
  auto measure = [&](auto& engine, RakeCompressResult& out,
                     std::vector<double>* round_s) {
    RunRakeCompress(engine, k);  // warmup: faults in the mailboxes
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = Clock::now();
      RakeCompressResult r = RunRakeCompress(engine, k);
      double s = std::chrono::duration<double>(Clock::now() - t0).count();
      if (s < best) {
        best = s;
        out = std::move(r);
        if (round_s != nullptr) {
          *round_s = bench::EngineTimingRecorder::Capture(engine);
        }
      }
    }
    return best;
  };

  local::Network net(tree, ids);
  bench::EngineTimingRecorder::Arm(net);
  RakeCompressResult fast;
  std::vector<double> fast_round_s;
  double fast_s = measure(net, fast, &fast_round_s);

  local::ReferenceNetwork ref_net(tree, ids);
  RakeCompressResult ref;
  double ref_s = measure(ref_net, ref, nullptr);

  const bool identical = fast.iteration == ref.iteration &&
                         fast.compressed == ref.compressed &&
                         fast.engine_rounds == ref.engine_rounds &&
                         fast.messages == ref.messages &&
                         fast.round_stats == ref.round_stats;
  const double speedup = ref_s / fast_s;

  // Per-round trajectory: active nodes and measured cost. The optimized
  // engine's per-round cost must decay with active_nodes; the tail rounds
  // (most nodes halted) must be far cheaper than round 0.
  std::vector<int64_t> active, sent;
  for (const auto& rs : fast.round_stats) {
    active.push_back(rs.active_nodes);
    sent.push_back(rs.messages_sent);
  }
  double head_cost_per_round = 0, tail_cost_per_round = 0;
  const size_t rounds = fast_round_s.size();
  const size_t head = std::min<size_t>(3, rounds);
  for (size_t r = 0; r < head; ++r) head_cost_per_round += fast_round_s[r];
  head_cost_per_round /= std::max<size_t>(head, 1);
  size_t tail_from = rounds - std::min<size_t>(3, rounds);
  for (size_t r = tail_from; r < rounds; ++r) {
    tail_cost_per_round += fast_round_s[r];
  }
  tail_cost_per_round /= std::max<size_t>(rounds - tail_from, 1);

  json.BeginRecord();
  json.Field("source", "bench_engine_micro");
  json.Field("experiment", "rake_compress_engine_acceptance");
  json.Field("family", family);
  json.Field("n", n);
  json.Field("edges", tree.NumEdges());
  json.Field("k", k);
  json.Field("rounds", fast.engine_rounds);
  json.Field("messages", fast.messages);
  json.Field("optimized_seconds", fast_s);
  json.Field("reference_seconds", ref_s);
  json.Field("speedup", speedup);
  json.Field("optimized_rounds_per_sec", fast.engine_rounds / fast_s);
  json.Field("reference_rounds_per_sec", ref.engine_rounds / ref_s);
  json.Field("transcripts_identical", identical);
  json.Field("round_active_nodes", active);
  json.Field("round_messages", sent);
  json.Field("round_seconds", fast_round_s);
  json.Field("head_mean_round_seconds", head_cost_per_round);
  json.Field("tail_mean_round_seconds", tail_cost_per_round);

  std::cout << "  rounds=" << fast.engine_rounds
            << " messages=" << fast.messages << " identical="
            << (identical ? "yes" : "NO (BUG)") << "\n"
            << "  optimized: " << fast_s << " s   reference: " << ref_s
            << " s   speedup: " << speedup << "x\n"
            << "  per-round cost head/tail: " << head_cost_per_round << " / "
            << tail_cost_per_round << " s (active "
            << (active.empty() ? 0 : active.front()) << " -> "
            << (active.empty() ? 0 : active.back()) << ")\n";
  return identical;
}

// Returns false if any engine pair diverged, so CI fails on lost identity.
bool RunEngineAcceptance(int n) {
  auto ids = DefaultIds(n, 22);
  bench::JsonWriter json;
  bool ok = true;
  // The balanced binary tree under k = 2 is the long-trajectory workload:
  // only the leaf layer rakes each iteration, so the run takes Theta(log n)
  // iterations with a geometrically shrinking active set — the worklist's
  // headline case. The uniform tree collapses in O(1) iterations, so its
  // rounds stay all-active-heavy; both are reported.
  {
    Graph tree = MakeTree(TreeFamily::kBinary, n, 21);
    ok &= MeasureRakeCompress("balanced-binary", tree, ids, 2, json);
  }
  {
    Graph tree = UniformRandomTree(n, 21);
    ok &= MeasureRakeCompress("uniform-random", tree, ids, 2, json);
    ok &= MeasureRakeCompress("uniform-random", tree, ids, 4, json);
  }
  json.MergeAs("bench_engine_micro", "BENCH_engine.json");
  std::cout << "  wrote BENCH_engine.json\n";
  return ok;
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  // --engine_n=<n> overrides the acceptance run's size; --engine_only skips
  // the google-benchmark microbenchmarks.
  int engine_n = 1 << 20;
  bool engine_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--engine_n=", 0) == 0) {
      engine_n = std::atoi(arg.c_str() + 11);
      if (engine_n < 2) {
        std::cerr << "bench_engine_micro: --engine_n must be an integer >= 2, "
                     "got \""
                  << arg.c_str() + 11 << "\"\n";
        return 1;
      }
    } else if (arg == "--engine_only") {
      engine_only = true;
    }
  }
  if (!engine_only) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return treelocal::RunEngineAcceptance(engine_n) ? 0 : 1;
}
