// Experiment E11: google-benchmark microbenchmarks of the substrate — the
// LOCAL engine's round throughput, Linial color reduction, Cole-Vishkin,
// rake-and-compress, and line-graph construction. These quantify the cost
// of *simulating* a round, not the LOCAL round complexity itself.
#include <benchmark/benchmark.h>

#include "src/algos/cole_vishkin.h"
#include "src/algos/linial.h"
#include "src/core/decomposition.h"
#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/graph/linegraph.h"
#include "src/local/network.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

class BroadcastK : public local::Algorithm {
 public:
  explicit BroadcastK(int rounds) : rounds_(rounds) {}
  void OnRound(local::NodeContext& ctx) override {
    if (ctx.round() >= rounds_) {
      ctx.Halt();
      return;
    }
    ctx.Broadcast(local::Message::Of(ctx.round()));
  }

 private:
  int rounds_;
};

void BM_EngineBroadcastRounds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = UniformRandomTree(n, 1);
  auto ids = DefaultIds(n, 2);
  for (auto _ : state) {
    local::Network net(g, ids);
    BroadcastK alg(10);
    benchmark::DoNotOptimize(net.Run(alg, 20));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{10} * n);
}
BENCHMARK(BM_EngineBroadcastRounds)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_Linial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = BoundedDegreeRandomTree(n, 8, 3);
  auto ids = DefaultIds(n, 4);
  int64_t space = int64_t{n} * n * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLinial(g, ids, space));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Linial)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_ColeVishkin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = Path(n);
  auto ids = DefaultIds(n, 5);
  std::vector<int> parent(n, -1);
  for (int v = 1; v < n; ++v) parent[v] = v - 1;
  int64_t space = int64_t{n} * n * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColeVishkin3Color(g, ids, parent, space));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColeVishkin)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_RakeCompress(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = UniformRandomTree(n, 6);
  auto ids = DefaultIds(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRakeCompress(g, ids, 4));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RakeCompress)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_Decomposition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = ForestUnion(n, 3, 8);
  auto ids = DefaultIds(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDecomposition(g, ids, 3, 6, 15));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Decomposition)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16);

void BM_BuildLineGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = BoundedDegreeRandomTree(n, 6, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildLineGraph(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_BuildLineGraph)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16);

void BM_UniformRandomTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(UniformRandomTree(n, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UniformRandomTree)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace
}  // namespace treelocal

BENCHMARK_MAIN();
