// Experiment E7 (Theorem 15 / Section 5.2): maximal matching on trees in
// O(log n / log log n) rounds via the transformation, vs the direct base
// algorithm. This reproduces the paper's generic re-derivation of the
// [BE13] bound (which is tight by [BBH+21, BBKO22a]).
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/baseline.h"
#include "src/core/complexity.h"
#include "src/core/transform_edge.h"
#include "src/graph/generators.h"
#include "src/problems/matching.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

void Run() {
  MatchingProblem mm;
  Table table({"family", "n", "Delta", "k", "rounds", "decomp", "base",
               "split", "gather", "baselineRounds", "logn/loglogn", "valid"});
  for (TreeFamily family : {TreeFamily::kUniform, TreeFamily::kRecursive,
                            TreeFamily::kStar, TreeFamily::kBalanced8}) {
    // The direct baseline on a star builds L(K_{1,n-1}) = K_{n-1}
    // (Theta(n^2) edges), so cap that family; the blow-up is precisely what
    // the transformation avoids.
    int max_exp = family == TreeFamily::kStar ? 12 : 18;
    for (int n : bench::PowersOfTwo(10, max_exp)) {
      Graph tree = MakeTree(family, n, 9);
      auto ids = DefaultIds(tree.NumNodes(), 10);
      int64_t space = bench::IdSpace(tree.NumNodes());
      // a = 1 on trees; Theorem 15 requires k >= 5a.
      int k = std::max(5, ChooseK(tree.NumNodes(), QuadraticF()));

      auto transformed = SolveEdgeProblemBoundedArboricity(
          mm, tree, ids, space, /*a=*/1, k);
      auto baseline = RunEdgeBaseline(mm, tree, ids, space);

      table.AddRow({TreeFamilyName(family), Table::Num(tree.NumNodes()),
                    Table::Num(tree.MaxDegree()), Table::Num(k),
                    Table::Num(transformed.rounds_total),
                    Table::Num(transformed.rounds_decomposition),
                    Table::Num(transformed.rounds_base),
                    Table::Num(transformed.rounds_split),
                    Table::Num(transformed.rounds_gather),
                    Table::Num(baseline.rounds_total),
                    Table::Num(BarrierLogOverLogLog(tree.NumNodes()), 1),
                    (transformed.valid && baseline.valid) ? "yes" : "NO"});
    }
  }
  table.Print(
      "E7: Theorem 15 maximal matching on trees (transformed vs direct)");
  table.WriteCsv("bench_thm15_matching");
  table.WriteJson("bench_thm15_matching");
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::Run();
  return 0;
}
