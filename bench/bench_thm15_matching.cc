// Experiment E7 (Theorem 15 / Section 5.2): maximal matching on trees in
// O(log n / log log n) rounds via the transformation, vs the direct base
// algorithm. This reproduces the paper's generic re-derivation of the
// [BE13] bound (which is tight by [BBH+21, BBKO22a]).
//
// The transformation now runs ENGINE-NATIVE (phases 1-3 on one reused host
// engine); every configuration is gated on bit-identity against the
// preserved legacy path (exit non-zero on divergence) and contributes its
// engine round trajectories + wall-clock speedup to BENCH_engine.json as
// source "bench_thm15_matching".
//
// Flags: --n_max_exp=<E> (default 18; sizes 2^10..2^E), --reps=<best-of>
// (default 1). CI smoke-runs this at --n_max_exp=11.
#include <chrono>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/baseline.h"
#include "src/core/complexity.h"
#include "src/core/transform_edge.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/problems/matching.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;
using bench::EmitTrajectory;
using bench::SameLabeling;

bool Run(int n_max_exp, int reps) {
  MatchingProblem mm;
  bool all_identical = true;
  bench::JsonWriter json;
  Table table({"family", "n", "Delta", "k", "rounds", "decomp", "base",
               "split", "gather", "baselineRounds", "logn/loglogn",
               "speedup", "valid"});
  for (TreeFamily family : {TreeFamily::kUniform, TreeFamily::kRecursive,
                            TreeFamily::kStar, TreeFamily::kBalanced8}) {
    // The direct baseline on a star builds L(K_{1,n-1}) = K_{n-1}
    // (Theta(n^2) edges), so cap that family; the blow-up is precisely what
    // the transformation avoids.
    int max_exp = family == TreeFamily::kStar ? std::min(12, n_max_exp)
                                              : n_max_exp;
    for (int n : bench::PowersOfTwo(10, max_exp)) {
      Graph tree = MakeTree(family, n, 9);
      auto ids = DefaultIds(tree.NumNodes(), 10);
      int64_t space = bench::IdSpace(tree.NumNodes());
      // a = 1 on trees; Theorem 15 requires k >= 5a.
      int k = std::max(5, ChooseK(tree.NumNodes(), QuadraticF()));

      // Engine-native pipeline on an explicit, timing-armed host engine
      // (best-of-reps; the engine is reused across reps, as in production).
      local::Network net(tree, ids);
      bench::EngineTimingRecorder::Arm(net);
      Thm15Result transformed;
      double engine_s = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        auto t0 = Clock::now();
        Thm15Result r =
            SolveEdgeProblemBoundedArboricity(mm, net, space, /*a=*/1, k);
        double s = bench::SecondsSince(t0);
        if (s < engine_s) {
          engine_s = s;
          transformed = std::move(r);
        }
      }

      // Legacy oracle + identity gate.
      double legacy_s = 1e300;
      Thm15Result legacy;
      for (int rep = 0; rep < reps; ++rep) {
        auto t0 = Clock::now();
        Thm15Result r = SolveEdgeProblemBoundedArboricityLegacy(
            mm, tree, ids, space, /*a=*/1, k);
        double s = bench::SecondsSince(t0);
        if (s < legacy_s) {
          legacy_s = s;
          legacy = std::move(r);
        }
      }
      bool identical =
          SameLabeling(tree, transformed.labeling, legacy.labeling) &&
          transformed.rounds_total == legacy.rounds_total &&
          transformed.engine_messages == legacy.engine_messages;
      all_identical &= identical;

      auto baseline = RunEdgeBaseline(mm, tree, ids, space);

      table.AddRow({TreeFamilyName(family), Table::Num(tree.NumNodes()),
                    Table::Num(tree.MaxDegree()), Table::Num(k),
                    Table::Num(transformed.rounds_total),
                    Table::Num(transformed.rounds_decomposition),
                    Table::Num(transformed.rounds_base),
                    Table::Num(transformed.rounds_split),
                    Table::Num(transformed.rounds_gather),
                    Table::Num(baseline.rounds_total),
                    Table::Num(BarrierLogOverLogLog(tree.NumNodes()), 1),
                    Table::Num(legacy_s / engine_s, 2),
                    (transformed.valid && baseline.valid && identical)
                        ? "yes"
                        : "NO"});

      json.BeginRecord();
      json.Field("source", "bench_thm15_matching");
      json.Field("experiment", "thm15_pipeline");
      json.Field("family", TreeFamilyName(family));
      json.Field("n", tree.NumNodes());
      json.Field("k", k);
      json.Field("rounds", transformed.rounds_total);
      json.Field("engine_seconds", engine_s);
      json.Field("legacy_seconds", legacy_s);
      json.Field("speedup", legacy_s / engine_s);
      json.Field("transcripts_identical", identical);
      json.Field("valid", transformed.valid && baseline.valid);
      EmitTrajectory(json, "decomp", transformed.decomposition.round_stats,
                     transformed.round_seconds_decomposition);
      EmitTrajectory(json, "base_sweep",
                     transformed.base_stats.sweep_round_stats,
                     transformed.round_seconds_base_sweep);
      EmitTrajectory(json, "split", transformed.split.round_stats,
                     transformed.round_seconds_split);
    }
  }
  table.Print(
      "E7: Theorem 15 maximal matching on trees (engine-native transform, "
      "identity-gated vs legacy)");
  table.WriteCsv("bench_thm15_matching");
  table.WriteJson("bench_thm15_matching");
  json.MergeAs("bench_thm15_matching", "BENCH_engine.json");
  if (!all_identical) {
    std::cerr << "bench_thm15_matching: ENGINE/LEGACY TRANSCRIPT "
                 "DIVERGENCE\n";
  }
  return all_identical;
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  int n_max_exp = 18;
  int reps = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n_max_exp=", 0) == 0) {
      n_max_exp = std::atoi(arg.c_str() + 12);
      if (n_max_exp < 10 || n_max_exp > 24) {
        std::cerr << "bench_thm15_matching: --n_max_exp must be in "
                     "[10, 24]\n";
        return 1;
      }
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(1, std::atoi(arg.c_str() + 7));
    } else {
      std::cerr << "bench_thm15_matching: unknown flag " << arg << "\n";
      return 1;
    }
  }
  return treelocal::Run(n_max_exp, reps) ? 0 : 1;
}
