// Checkpoint/resume overhead driver, identity-gated: measures what the
// crash-safety layer costs on the acceptance-sized rake-compress workload
// (n = 2^20 uniform random tree by default) and refuses to report numbers
// whose recovered run is not bit-identical to the uninterrupted one.
//
// Records merged into BENCH_engine.json as source "bench_snapshot":
//   * checkpoint_resume: wall-clock of a mid-run Checkpoint (serialize +
//     integrity hash), of ReadSnapshot-side Resume validation, and of the
//     resumed run to completion, plus the snapshot byte size. The gate:
//     resumed rounds/messages/final digest must equal the uninterrupted
//     run's.
//   * digest_overhead: run time with the always-on counter chain only vs
//     NetworkOptions::digest_messages (per-send content hashing), same
//     engine, same workload — the cost of full-content transcripts.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/local/snapshot.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Flags {
  int n = 1 << 20;
  int k = 2;
  int reps = 3;
};

bool RunCheckpointResume(const Graph& tree, const std::vector<int64_t>& ids,
                         const Flags& f, bench::JsonWriter& json) {
  // Uninterrupted reference run (also warms the page cache / allocator).
  local::Network clean(tree, ids);
  auto clean_alg = MakeRakeCompressAlgorithm(tree, f.k);
  const int max_rounds = 3 * (2 * RakeCompressIterationBound(tree.NumNodes(),
                                                             f.k) + 8);
  auto t0 = Clock::now();
  const int rounds = clean.Run(*clean_alg, max_rounds);
  const double run_s = Seconds(t0);
  const uint64_t want_digest = clean.last_digest();
  const int64_t want_messages = clean.messages_delivered();

  const int pause = rounds / 2;
  double checkpoint_s = 1e300, resume_validate_s = 1e300,
         resumed_run_s = 1e300;
  size_t snapshot_bytes = 0;
  bool identical = true;
  for (int rep = 0; rep < f.reps; ++rep) {
    local::Network net(tree, ids);
    auto alg = MakeRakeCompressAlgorithm(tree, f.k);
    net.RunUntil(*alg, max_rounds, pause);
    std::ostringstream out;
    t0 = Clock::now();
    net.Checkpoint(out);
    checkpoint_s = std::min(checkpoint_s, Seconds(t0));
    const std::string bytes = out.str();
    snapshot_bytes = bytes.size();

    local::Network resumed(tree, ids);
    auto ralg = MakeRakeCompressAlgorithm(tree, f.k);
    std::istringstream in(bytes);
    t0 = Clock::now();
    resumed.Resume(in);  // parse + integrity + validation
    resume_validate_s = std::min(resume_validate_s, Seconds(t0));
    t0 = Clock::now();
    const int resumed_rounds = resumed.Run(*ralg, max_rounds);
    resumed_run_s = std::min(resumed_run_s, Seconds(t0));
    identical &= resumed_rounds == rounds &&
                 resumed.messages_delivered() == want_messages &&
                 resumed.last_digest() == want_digest;
  }

  json.BeginRecord();
  json.Field("source", "bench_snapshot");
  json.Field("experiment", "checkpoint_resume");
  json.Field("n", tree.NumNodes());
  json.Field("edges", tree.NumEdges());
  json.Field("k", f.k);
  json.Field("rounds", rounds);
  json.Field("messages", want_messages);
  json.Field("pause_round", pause);
  json.Field("uninterrupted_seconds", run_s);
  json.Field("checkpoint_seconds", checkpoint_s);
  json.Field("resume_validate_seconds", resume_validate_s);
  json.Field("resumed_run_seconds", resumed_run_s);
  json.Field("snapshot_bytes", static_cast<int64_t>(snapshot_bytes));
  json.Field("transcripts_identical", identical);
  std::cout << "  checkpoint_resume: n=" << tree.NumNodes() << " rounds="
            << rounds << " snapshot=" << snapshot_bytes / (1024.0 * 1024.0)
            << " MiB checkpoint=" << checkpoint_s << "s resume_validate="
            << resume_validate_s << "s identical=" << identical << "\n";
  return identical;
}

bool RunDigestOverhead(const Graph& tree, const std::vector<int64_t>& ids,
                       const Flags& f, bench::JsonWriter& json) {
  const int max_rounds = 3 * (2 * RakeCompressIterationBound(tree.NumNodes(),
                                                             f.k) + 8);
  double counters_s = 1e300, content_s = 1e300;
  uint64_t counters_digest = 0, content_digest = 0;
  {
    local::Network net(tree, ids);
    for (int rep = 0; rep < f.reps + 1; ++rep) {  // rep 0 = warmup
      auto alg = MakeRakeCompressAlgorithm(tree, f.k);
      auto t0 = Clock::now();
      net.Run(*alg, max_rounds);
      if (rep > 0) counters_s = std::min(counters_s, Seconds(t0));
    }
    counters_digest = net.last_digest();
  }
  {
    local::NetworkOptions opt;
    opt.digest_messages = true;
    local::Network net(tree, ids, opt);
    for (int rep = 0; rep < f.reps + 1; ++rep) {
      auto alg = MakeRakeCompressAlgorithm(tree, f.k);
      auto t0 = Clock::now();
      net.Run(*alg, max_rounds);
      if (rep > 0) content_s = std::min(content_s, Seconds(t0));
    }
    content_digest = net.last_digest();
  }
  // Sanity, not timing: the two levels must chain different values on any
  // run that sends messages, and repeated runs already proved stability.
  const bool distinct = counters_digest != content_digest;

  json.BeginRecord();
  json.Field("source", "bench_snapshot");
  json.Field("experiment", "digest_overhead");
  json.Field("n", tree.NumNodes());
  json.Field("k", f.k);
  json.Field("counters_only_seconds", counters_s);
  json.Field("content_digest_seconds", content_s);
  json.Field("content_overhead_ratio", content_s / counters_s);
  json.Field("digest_levels_distinct", distinct);
  std::cout << "  digest_overhead: counters=" << counters_s << "s content="
            << content_s << "s ratio=" << content_s / counters_s << "\n";
  return distinct;
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  treelocal::Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      f.n = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--k=", 0) == 0) {
      f.k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--reps=", 0) == 0) {
      f.reps = std::atoi(arg.c_str() + 7);
    } else {
      std::cerr << "bench_snapshot: unknown flag " << arg
                << " (flags: --n= --k= --reps=)\n";
      return 1;
    }
  }
  if (f.n < 2 || f.k < 2 || f.reps < 1) {
    std::cerr << "bench_snapshot: need n >= 2, k >= 2, reps >= 1\n";
    return 1;
  }

  treelocal::Graph tree = treelocal::UniformRandomTree(f.n, 77);
  auto ids = treelocal::DefaultIds(f.n, 78);

  treelocal::bench::JsonWriter json;
  bool ok = treelocal::RunCheckpointResume(tree, ids, f, json);
  ok &= treelocal::RunDigestOverhead(tree, ids, f, json);
  json.MergeAs("bench_snapshot", "BENCH_engine.json");
  std::cout << (ok ? "  wrote BENCH_engine.json\n"
                   : "IDENTITY GATE FAILED — not trusting these numbers\n");
  return ok ? 0 : 1;
}
