// Experiment E8 (Theorem 3): (edge-degree+1)-edge coloring on trees.
//
// Three series are reported:
//   (1) measured  — the full pipeline run end-to-end with our implemented
//       f(Delta) = O~(Delta^2) base algorithm and k = g(n) for that f
//       (every phase measured on the engine);
//   (2) modeled   — the paper's configuration: k = g(n) for
//       f(Delta) = log^12(Delta) [BBKO22b]; decomposition/split/gather are
//       *measured* with that k, only the base phase round count is modeled
//       as f(k) + log* n (DESIGN.md substitution #1);
//   (3) analytic  — the paper's O(log^{12/13} n) curve and the
//       Omega(log n / log log n) MIS/MM barrier it separates from, extended
//       in log-space far beyond feasible n to exhibit the crossover.
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/complexity.h"
#include "src/core/transform_edge.h"
#include "src/graph/generators.h"
#include "src/problems/edge_coloring.h"
#include "src/support/mathutil.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

void RunMeasured() {
  Table table({"n", "k", "rounds", "decomp", "base", "split", "gather",
               "log2n", "valid"});
  for (int n : bench::PowersOfTwo(10, 18)) {
    Graph tree = UniformRandomTree(n, 3);
    auto ids = DefaultIds(n, 4);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                tree.MaxDegree());
    int k = std::max(5, ChooseK(n, QuadraticF()));
    auto result = SolveEdgeProblemBoundedArboricity(problem, tree, ids,
                                                    bench::IdSpace(n), 1, k);
    table.AddRow({Table::Num(n), Table::Num(k), Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_split),
                  Table::Num(result.rounds_gather),
                  Table::Num(std::log2(double(n)), 1),
                  result.valid ? "yes" : "NO"});
  }
  table.Print(
      "E8a: (edge-degree+1)-edge coloring on trees, measured pipeline "
      "(implemented f(Delta)=O~(Delta^2) base)");
  table.WriteCsv("bench_thm3_measured");
  table.WriteJson("bench_thm3_measured");
}

void RunModeled() {
  // Paper configuration: f(Delta) = log^12(Delta), k = g(n) with
  // g^{f(g)} = n, so the base phase costs f(g(n)) = log^{12/13}(n) rounds
  // asymptotically — that value is charged as the model. The decomposition,
  // split and gather phases are *measured* by running the real pipeline
  // (with k clamped to Theorem 15's k >= 5a requirement, which at feasible
  // n exceeds the tiny g(n) — the asymptotic regime needs n = 2^(2^13+)).
  auto f = PolylogF(12.0);
  Table table({"n", "g(n)", "k(run)", "decomp+split+gather(meas)",
               "base=f(g) (model)", "total(model)", "barrier", "valid"});
  for (int n : bench::PowersOfTwo(10, 18)) {
    Graph tree = UniformRandomTree(n, 5);
    auto ids = DefaultIds(n, 6);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                tree.MaxDegree());
    double g = SolveG(double(n), f);
    int k = std::max(5, static_cast<int>(g));
    auto result = SolveEdgeProblemBoundedArboricity(problem, tree, ids,
                                                    bench::IdSpace(n), 1, k);
    double measured_overhead = result.rounds_decomposition +
                               result.rounds_split + result.rounds_gather;
    double base_model = f(g) + LogStar(double(n));
    table.AddRow({Table::Num(n), Table::Num(g, 2), Table::Num(k),
                  Table::Num(measured_overhead, 0),
                  Table::Num(base_model, 1),
                  Table::Num(measured_overhead + base_model, 1),
                  Table::Num(BarrierLogOverLogLog(double(n)), 1),
                  result.valid ? "yes" : "NO"});
  }
  table.Print(
      "E8b: Theorem 3 configuration (f = log^12 Delta [BBKO22b]; base "
      "phase modeled at f(g(n)) = log^{12/13} n, other phases measured)");
  table.WriteCsv("bench_thm3_modeled");
  table.WriteJson("bench_thm3_modeled");
}

void RunAnalytic() {
  // The separation is asymptotic: in log-space, with L = log2 n, the paper
  // curve is L^{12/13} and the barrier is L / log2 L; the ratio
  // log2(L)/L^{1/13} -> 0. Report the curves across 30 orders of magnitude.
  Table table({"log2(n)", "paper L^(12/13)", "barrier L/log2L",
               "ratio paper/barrier", "paperWins"});
  for (double big_l : {16., 64., 256., 1024., 4096., 65536., 1e6, 1e9, 1e12,
                       1e18, 1e24, 1e30}) {
    double paper = std::pow(big_l, 12.0 / 13.0);
    double barrier = big_l / std::log2(big_l);
    table.AddRow({Table::Num(big_l, 0), Table::Num(paper, 1),
                  Table::Num(barrier, 1), Table::Num(paper / barrier, 3),
                  paper < barrier ? "yes" : "no"});
  }
  table.Print(
      "E8c: analytic separation, log-space (crossover at L = (log2 L)^13)");
  table.WriteCsv("bench_thm3_analytic");
  table.WriteJson("bench_thm3_analytic");
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::RunMeasured();
  treelocal::RunModeled();
  treelocal::RunAnalytic();
  return 0;
}
