// Experiment E8 (Theorem 3): (edge-degree+1)-edge coloring on trees.
//
// Three series are reported:
//   (1) measured  — the full pipeline run end-to-end with our implemented
//       f(Delta) = O~(Delta^2) base algorithm and k = g(n) for that f
//       (every phase measured on the engine);
//   (2) modeled   — the paper's configuration: k = g(n) for
//       f(Delta) = log^12(Delta) [BBKO22b]; decomposition/split/gather are
//       *measured* with that k, only the base phase round count is modeled
//       as f(k) + log* n (DESIGN.md substitution #1);
//   (3) analytic  — the paper's O(log^{12/13} n) curve and the
//       Omega(log n / log log n) MIS/MM barrier it separates from, extended
//       in log-space far beyond feasible n to exhibit the crossover.
// Plus the phase-2/3 acceptance: the engine-native base + fused forest
// split vs the legacy host-side path at n = 2^accept_exp on one shared
// decomposition, identity-gated, speedup recorded in BENCH_engine.json
// (experiment "edge_pipeline_phase23", acceptance=true when the size is the
// real 2^18+ measurement rather than a CI smoke run).
//
// Flags: --n_lo= --n_hi= (measured sweep exponents, default 10..18),
// --accept_exp= (default 20), --reps= (acceptance best-of, default 3).
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/complexity.h"
#include "src/core/forest_split.h"
#include "src/core/transform_edge.h"
#include "src/graph/generators.h"
#include "src/graph/semigraph.h"
#include "src/local/network.h"
#include "src/problems/edge_coloring.h"
#include "src/support/mathutil.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;
using bench::EmitTrajectory;
using bench::SameLabeling;

bool RunMeasured(int n_lo, int n_hi, bench::JsonWriter& json) {
  bool all_identical = true;
  Table table({"n", "k", "rounds", "decomp", "base", "split", "gather",
               "log2n", "valid"});
  for (int n : bench::PowersOfTwo(n_lo, n_hi)) {
    Graph tree = UniformRandomTree(n, 3);
    auto ids = DefaultIds(n, 4);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                tree.MaxDegree());
    int k = std::max(5, ChooseK(n, QuadraticF()));
    local::Network net(tree, ids);
    bench::EngineTimingRecorder::Arm(net);
    auto t0 = Clock::now();
    auto result = SolveEdgeProblemBoundedArboricity(problem, net,
                                                    bench::IdSpace(n), 1, k);
    double engine_s = bench::SecondsSince(t0);
    t0 = Clock::now();
    auto legacy = SolveEdgeProblemBoundedArboricityLegacy(
        problem, tree, ids, bench::IdSpace(n), 1, k);
    double legacy_s = bench::SecondsSince(t0);
    bool identical = SameLabeling(tree, result.labeling, legacy.labeling) &&
                     result.rounds_total == legacy.rounds_total;
    all_identical &= identical;
    table.AddRow({Table::Num(n), Table::Num(k), Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_split),
                  Table::Num(result.rounds_gather),
                  Table::Num(std::log2(double(n)), 1),
                  (result.valid && identical) ? "yes" : "NO"});

    json.BeginRecord();
    json.Field("source", "bench_thm3_edge_coloring");
    json.Field("experiment", "thm3_pipeline");
    json.Field("n", n);
    json.Field("k", k);
    json.Field("rounds", result.rounds_total);
    json.Field("engine_seconds", engine_s);
    json.Field("legacy_seconds", legacy_s);
    json.Field("speedup", legacy_s / engine_s);
    json.Field("transcripts_identical", identical);
    json.Field("valid", result.valid);
    EmitTrajectory(json, "decomp", result.decomposition.round_stats,
                   result.round_seconds_decomposition);
    EmitTrajectory(json, "base_sweep", result.base_stats.sweep_round_stats,
                   result.round_seconds_base_sweep);
    EmitTrajectory(json, "split", result.split.round_stats,
                   result.round_seconds_split);
  }
  table.Print(
      "E8a: (edge-degree+1)-edge coloring on trees, measured engine-native "
      "pipeline (implemented f(Delta)=O~(Delta^2) base), identity-gated");
  table.WriteCsv("bench_thm3_measured");
  table.WriteJson("bench_thm3_measured");
  return all_identical;
}

// Phase-2/3 acceptance: one decomposition, then the engine-native base +
// fused multi-forest split vs the legacy base + per-forest split, best-of
// reps each, identity-gated, on two workloads:
//   * uniform tree (a = 1) — Theorem 15's degenerate tree case. Here the
//     engine's wins (sort-free line graph, flat-key IDs, O(|E1|) split)
//     and the faithful round simulation's costs (announcement sends, cache
//     interference on the shared greedy) cancel to ~parity, so this record
//     is reported but NOT floored.
//   * union of 2 random forests (a = 2) — the bounded-arboricity workload
//     the theorem is actually about; the larger G[E2] line graph makes the
//     engine's construction wins structural. This record carries
//     acceptance=true and check_bench_regression.py floors it at 0.8x (a
//     collapse detector — this container's wall-clock noise band is wider
//     than the structural win; the deterministic gates are transcript
//     identity and the wake-scheduler visit bound).
//
// Both acceptance workloads also run the class sweep with the wake
// scheduler ON and OFF in-process and gate on bit-identical transcripts,
// recording visits/decisions/wakes so the checker can bound the calendar.
bool RunPhase23Acceptance(int accept_exp, int reps, bench::JsonWriter& json) {
  const int n = 1 << accept_exp;
  struct Workload {
    std::string name;
    Graph graph;
    int a;
    bool floored;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"uniform_tree", UniformRandomTree(n, 5), 1, false});
  workloads.push_back({"forest_union_a2", ForestUnion(n, 2, 7), 2, true});

  bool all_identical = true;
  for (const Workload& w : workloads) {
    const Graph& g = w.graph;
    auto ids = DefaultIds(g.NumNodes(), 6);
    const int64_t space = bench::IdSpace(g.NumNodes());
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                g.MaxDegree());
    int k = std::max(5 * w.a, ChooseK(n, QuadraticF()));

    local::Network net(g, ids);
    auto decomp = RunDecomposition(net, w.a, 2 * w.a, k);
    std::vector<char> typical_mask(g.NumEdges(), 0);
    for (int e = 0; e < g.NumEdges(); ++e) {
      typical_mask[e] = decomp.atypical[e] ? 0 : 1;
    }
    SemiGraph e2 = SemiGraph::EdgeInduced(g, typical_mask);

    // Interleaved best-of-reps: pairing each engine rep with a legacy rep
    // keeps slow machine-load drift out of the ratio (the two sides see
    // the same conditions within a pair).
    HalfEdgeLabeling h_engine(g), h_legacy(g);
    ForestSplitResult split_engine, split_legacy;
    double engine_s = 1e300, legacy_s = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      h_engine = HalfEdgeLabeling(g);
      auto t0 = Clock::now();
      RunEdgeBase(net, problem, e2, space, h_engine);
      split_engine = SplitAtypicalForests(net, decomp, w.a, space);
      engine_s = std::min(engine_s, bench::SecondsSince(t0));

      h_legacy = HalfEdgeLabeling(g);
      t0 = Clock::now();
      RunEdgeBaseLegacy(problem, e2, ids, space, h_legacy);
      split_legacy = SplitAtypicalForests(g, ids, space, decomp, w.a);
      legacy_s = std::min(legacy_s, bench::SecondsSince(t0));
    }
    bool identical =
        SameLabeling(g, h_engine, h_legacy) &&
        split_engine.forest_of_edge == split_legacy.forest_of_edge &&
        split_engine.star_class_of_edge == split_legacy.star_class_of_edge &&
        split_engine.cv_rounds == split_legacy.cv_rounds;
    all_identical &= identical;

    // Wake-scheduler accounting: one extra base pass each with scheduling on
    // (the shared engine's default) and off, digest-gated. The class sweep is
    // the pipeline's idle-walk hot spot — under scheduling the engine visits
    // an owner only at its class rounds, so visits collapse from the
    // always-visit sum of live counts down to ~decisions + wakes while the
    // transcript stays bit-identical by construction. The record logs both
    // sides and the eliminated idle-visit count; check_bench_regression.py
    // bounds the visit ratio and requires scheduler_identical.
    HalfEdgeLabeling h_on(g), h_off(g);
    auto ts = Clock::now();
    BaseRunStats base_on = RunEdgeBase(net, problem, e2, space, h_on);
    const double sched_s = bench::SecondsSince(ts);
    const int64_t sweep_wakes = net.wakes();
    const std::vector<uint64_t> digests_on = net.round_digests();
    local::NetworkOptions unscheduled;
    unscheduled.wake_scheduling = false;
    local::Network net_off(g, ids, unscheduled);
    ts = Clock::now();
    BaseRunStats base_off = RunEdgeBase(net_off, problem, e2, space, h_off);
    const double unsched_s = bench::SecondsSince(ts);
    const int64_t visits_on = bench::TotalVisits(base_on.sweep_round_stats);
    const int64_t visits_off = bench::TotalVisits(base_off.sweep_round_stats);
    const int64_t decisions = bench::TotalDecisions(base_on.sweep_round_stats);
    const bool scheduler_identical =
        SameLabeling(g, h_on, h_off) &&
        digests_on == net_off.round_digests() &&
        base_on.sweep_round_stats == base_off.sweep_round_stats;
    all_identical &= scheduler_identical;

    json.BeginRecord();
    json.Field("source", "bench_thm3_edge_coloring");
    json.Field("experiment", "edge_pipeline_phase23");
    json.Field("workload", w.name);
    json.Field("acceptance", w.floored && accept_exp >= 18);
    json.Field("n", n);
    json.Field("a", w.a);
    json.Field("k", k);
    json.Field("engine_seconds", engine_s);
    json.Field("legacy_seconds", legacy_s);
    json.Field("speedup", legacy_s / engine_s);
    json.Field("transcripts_identical", identical);
    json.Field("sweep_visits_scheduled", visits_on);
    json.Field("sweep_visits_unscheduled", visits_off);
    json.Field("sweep_decisions", decisions);
    json.Field("sweep_wakes", sweep_wakes);
    json.Field("sweep_idle_visits_eliminated", visits_off - visits_on);
    json.Field("base_seconds_scheduled", sched_s);
    json.Field("base_seconds_unscheduled", unsched_s);
    json.Field("scheduler_identical", scheduler_identical);
    std::cout << "phase-2/3 " << w.name << " at n=2^" << accept_exp
              << ": engine " << engine_s << " s, legacy " << legacy_s
              << " s, speedup " << legacy_s / engine_s << "x, identical="
              << (identical ? "yes" : "NO (BUG)") << "\n";
    std::cout << "  wake scheduler: sweep visits " << visits_on
              << " scheduled vs " << visits_off << " always-visit ("
              << (visits_off - visits_on) << " idle visits eliminated; "
              << decisions << " decisions, " << sweep_wakes
              << " message wakes), transcript "
              << (scheduler_identical ? "identical" : "DIVERGED (BUG)")
              << "; base phase " << sched_s << " s scheduled vs " << unsched_s
              << " s always-visit\n";
  }
  return all_identical;
}

void RunModeled(int n_lo, int n_hi) {
  // Paper configuration: f(Delta) = log^12(Delta), k = g(n) with
  // g^{f(g)} = n, so the base phase costs f(g(n)) = log^{12/13}(n) rounds
  // asymptotically — that value is charged as the model. The decomposition,
  // split and gather phases are *measured* by running the real pipeline
  // (with k clamped to Theorem 15's k >= 5a requirement, which at feasible
  // n exceeds the tiny g(n) — the asymptotic regime needs n = 2^(2^13+)).
  auto f = PolylogF(12.0);
  Table table({"n", "g(n)", "k(run)", "decomp+split+gather(meas)",
               "base=f(g) (model)", "total(model)", "barrier", "valid"});
  for (int n : bench::PowersOfTwo(n_lo, n_hi)) {
    Graph tree = UniformRandomTree(n, 5);
    auto ids = DefaultIds(n, 6);
    EdgeColoringProblem problem(EdgeColoringProblem::Mode::kEdgeDegreePlusOne,
                                tree.MaxDegree());
    double g = SolveG(double(n), f);
    int k = std::max(5, static_cast<int>(g));
    auto result = SolveEdgeProblemBoundedArboricity(problem, tree, ids,
                                                    bench::IdSpace(n), 1, k);
    double measured_overhead = result.rounds_decomposition +
                               result.rounds_split + result.rounds_gather;
    double base_model = f(g) + LogStar(double(n));
    table.AddRow({Table::Num(n), Table::Num(g, 2), Table::Num(k),
                  Table::Num(measured_overhead, 0),
                  Table::Num(base_model, 1),
                  Table::Num(measured_overhead + base_model, 1),
                  Table::Num(BarrierLogOverLogLog(double(n)), 1),
                  result.valid ? "yes" : "NO"});
  }
  table.Print(
      "E8b: Theorem 3 configuration (f = log^12 Delta [BBKO22b]; base "
      "phase modeled at f(g(n)) = log^{12/13} n, other phases measured)");
  table.WriteCsv("bench_thm3_modeled");
  table.WriteJson("bench_thm3_modeled");
}

void RunAnalytic() {
  // The separation is asymptotic: in log-space, with L = log2 n, the paper
  // curve is L^{12/13} and the barrier is L / log2 L; the ratio
  // log2(L)/L^{1/13} -> 0. Report the curves across 30 orders of magnitude.
  Table table({"log2(n)", "paper L^(12/13)", "barrier L/log2L",
               "ratio paper/barrier", "paperWins"});
  for (double big_l : {16., 64., 256., 1024., 4096., 65536., 1e6, 1e9, 1e12,
                       1e18, 1e24, 1e30}) {
    double paper = std::pow(big_l, 12.0 / 13.0);
    double barrier = big_l / std::log2(big_l);
    table.AddRow({Table::Num(big_l, 0), Table::Num(paper, 1),
                  Table::Num(barrier, 1), Table::Num(paper / barrier, 3),
                  paper < barrier ? "yes" : "no"});
  }
  table.Print(
      "E8c: analytic separation, log-space (crossover at L = (log2 L)^13)");
  table.WriteCsv("bench_thm3_analytic");
  table.WriteJson("bench_thm3_analytic");
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  int n_lo = 10, n_hi = 18, accept_exp = 20, reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n_lo=", 0) == 0) {
      n_lo = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--n_hi=", 0) == 0) {
      n_hi = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--accept_exp=", 0) == 0) {
      accept_exp = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(1, std::atoi(arg.c_str() + 7));
    } else {
      std::cerr << "bench_thm3_edge_coloring: unknown flag " << arg << "\n";
      return 1;
    }
  }
  if (n_lo < 4 || n_hi > 24 || n_lo > n_hi || accept_exp < 10 ||
      accept_exp > 24) {
    std::cerr << "bench_thm3_edge_coloring: exponents out of range\n";
    return 1;
  }
  treelocal::bench::JsonWriter json;
  bool ok = treelocal::RunMeasured(n_lo, n_hi, json);
  ok &= treelocal::RunPhase23Acceptance(accept_exp, reps, json);
  treelocal::RunModeled(n_lo, n_hi);
  treelocal::RunAnalytic();
  json.MergeAs("bench_thm3_edge_coloring", "BENCH_engine.json");
  std::cout << "  wrote BENCH_engine.json\n";
  return ok ? 0 : 1;
}
