// Experiment E12: batched multi-instance engine throughput. Runs the
// k-ablation rake-compress sweep (the engine-bound phase of every Theorem
// 12/15 pipeline) two ways over one shared topology:
//   * sequential: one reusable Network, one Run per k;
//   * batched: one BatchNetwork with B = |ks| instances, one engine pass.
// Verifies the batch is bit-identical to the sequential runs per instance
// (outputs, per-instance round counts, message counts, per-round stats) —
// the process exits non-zero on any divergence, which is what CI gates on —
// and records the throughput ratio in BENCH_engine.json.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/algos/cole_vishkin.h"
#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/local/bitplane.h"
#include "src/local/network.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool Identical(const RakeCompressResult& a, const RakeCompressResult& b) {
  return a.iteration == b.iteration && a.compressed == b.compressed &&
         a.num_iterations == b.num_iterations &&
         a.engine_rounds == b.engine_rounds && a.messages == b.messages &&
         a.round_stats == b.round_stats;
}

// Returns true iff the batched transcripts matched the sequential ones.
bool RunBatchAcceptance(const Graph& tree, const std::vector<int64_t>& ids,
                        const std::vector<int>& ks, int reps,
                        bench::JsonWriter& json) {
  const int n = tree.NumNodes();
  const int batch = static_cast<int>(ks.size());
  std::cout << "Batch acceptance: rake-compress k-sweep on a " << n
            << "-node uniform tree, B=" << batch << " instances\n";

  // Both sides use one pre-constructed, reusable engine and best-of-reps
  // timing after a warmup pass, so the comparison is round throughput, not
  // construction or page-fault traffic.
  local::Network seq_net(tree, ids);
  std::vector<RakeCompressResult> seq(batch);
  for (int b = 0; b < batch; ++b) seq[b] = RunRakeCompress(seq_net, ks[b]);
  double seq_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    for (int b = 0; b < batch; ++b) seq[b] = RunRakeCompress(seq_net, ks[b]);
    seq_s = std::min(seq_s, Seconds(t0));
  }

  local::BatchNetwork batch_net(tree, ids, batch);
  std::vector<RakeCompressResult> batched = RunRakeCompressBatch(batch_net, ks);
  double batch_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    batched = RunRakeCompressBatch(batch_net, ks);
    batch_s = std::min(batch_s, Seconds(t0));
  }

  bool identical = true;
  for (int b = 0; b < batch; ++b) identical &= Identical(seq[b], batched[b]);
  const double speedup = seq_s / batch_s;

  std::vector<int64_t> rounds, messages;
  for (const auto& r : batched) {
    rounds.push_back(r.engine_rounds);
    messages.push_back(r.messages);
  }

  json.BeginRecord();
  json.Field("source", "bench_batch");
  json.Field("experiment", "batched_k_sweep_rake_compress");
  json.Field("family", "uniform-random");
  json.Field("n", n);
  json.Field("edges", tree.NumEdges());
  json.Field("batch", batch);
  json.Field("ks", ks);
  json.Field("sequential_seconds", seq_s);
  json.Field("batch_seconds", batch_s);
  json.Field("speedup", speedup);
  json.Field("transcripts_identical", identical);
  json.Field("instance_rounds", rounds);
  json.Field("instance_messages", messages);

  std::cout << "  identical=" << (identical ? "yes" : "NO (BUG)")
            << "  sequential: " << seq_s << " s   batched: " << batch_s
            << " s   throughput: " << speedup << "x\n";
  return identical;
}

// Shared-transcript dedup acceptance: a wide Thm12-style k-sweep whose tail
// sits at or above Delta (every such instance provably shares one
// transcript). Gates RunRakeCompressBatchDeduped's bit-identity against the
// undeduped batch, then times the deduped engine pass (U distinct
// instances) against the full one (B instances) — the measured per-instance
// memory-traffic saving the dedup buys.
bool RunDedupAcceptance(const Graph& tree, const std::vector<int64_t>& ids,
                        int reps, bench::JsonWriter& json) {
  const int n = tree.NumNodes();
  const int delta = tree.MaxDegree();
  const std::vector<int> ks = {2,  3,  4,  6,  8,   12,  16,  24,
                               32, 48, 64, 96, 128, 192, 256, 384};
  const int batch = static_cast<int>(ks.size());
  // Distinct canonical parameters, order-preserving — the same dedup rule
  // RunRakeCompressBatchDeduped applies internally.
  std::vector<int> unique_ks;
  for (int k : ks) {
    const int canon = RakeCompressCanonicalK(k, delta);
    bool seen = false;
    for (int u : unique_ks) seen |= u == canon;
    if (!seen) unique_ks.push_back(canon);
  }
  const int unique = static_cast<int>(unique_ks.size());
  std::cout << "Dedup acceptance: k-sweep B=" << batch << " on Delta="
            << delta << " tree collapses to U=" << unique << " instances\n";

  local::BatchNetwork full_net(tree, ids, batch);
  std::vector<RakeCompressResult> full = RunRakeCompressBatch(full_net, ks);
  double full_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    full = RunRakeCompressBatch(full_net, ks);
    full_s = std::min(full_s, Seconds(t0));
  }

  std::vector<RakeCompressResult> deduped =
      RunRakeCompressBatchDeduped(tree, ids, ks);
  bool identical = true;
  for (int b = 0; b < batch; ++b) identical &= Identical(full[b], deduped[b]);

  // Engine-pass timing on the deduped instance set (pre-constructed and
  // warmed like the full engine, so the comparison is round throughput).
  local::BatchNetwork unique_net(tree, ids, unique);
  RunRakeCompressBatch(unique_net, unique_ks);
  double deduped_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    RunRakeCompressBatch(unique_net, unique_ks);
    deduped_s = std::min(deduped_s, Seconds(t0));
  }

  json.BeginRecord();
  json.Field("source", "bench_batch");
  json.Field("experiment", "batched_k_sweep_dedup");
  json.Field("n", n);
  json.Field("max_degree", delta);
  json.Field("batch", batch);
  json.Field("unique_instances", unique);
  json.Field("dedup_factor", double(batch) / unique);
  json.Field("full_seconds", full_s);
  json.Field("deduped_seconds", deduped_s);
  json.Field("speedup", full_s / deduped_s);
  json.Field("transcripts_identical", identical);

  std::cout << "  identical=" << (identical ? "yes" : "NO (BUG)")
            << "  full: " << full_s << " s   deduped: " << deduped_s
            << " s   speedup: " << full_s / deduped_s << "x ("
            << double(batch) / unique << "x fewer instances)\n";
  return identical;
}

// BFS parent orientation rooted at 0 (the bench trees are connected).
std::vector<int> BfsParents(const Graph& tree) {
  std::vector<int> parent(tree.NumNodes(), -1);
  std::vector<char> seen(tree.NumNodes(), 0);
  std::vector<int> order = {0};
  seen[0] = 1;
  for (size_t i = 0; i < order.size(); ++i) {
    int v = order[i];
    for (int u : tree.Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        parent[u] = v;
        order.push_back(u);
      }
    }
  }
  return parent;
}

bool Identical(const local::bitplane::CvInstanceTranscript& a,
               const local::bitplane::CvInstanceTranscript& b) {
  return a.colors == b.colors && a.rounds == b.rounds &&
         a.messages == b.messages && a.round_stats == b.round_stats &&
         a.round_digests == b.round_digests && a.last_digest == b.last_digest;
}

// Bit-plane CV acceptance: B = 64 Cole-Vishkin instances (per-instance ID
// assignments) over one shared rooted tree, scalar BatchNetwork vs the
// bit-plane runner. The identity gate compares EVERY transcript field —
// colors, rounds, messages, per-round stats, digest chain — and a
// divergence fails the process, same as the rake-compress gate above.
// n is capped at 2^16 because the SCALAR side keeps 24-byte x B mailbox
// slots per channel (the regime whose memory traffic the planes eliminate);
// the cap is where the acceptance floor applies.
bool RunBitplaneAcceptance(int n_requested, int reps,
                           bench::JsonWriter& json) {
  constexpr int kAcceptanceN = 1 << 16;
  const int n = std::min(n_requested, kAcceptanceN);
  const int batch = 64;
  std::cout << "Bitplane acceptance: CV 3-coloring on a " << n
            << "-node uniform tree, B=" << batch
            << " bit-plane lanes vs scalar BatchNetwork\n";

  const Graph tree = UniformRandomTree(n, 31);
  const std::vector<int> parent = BfsParents(tree);
  const int64_t space = int64_t{n} * n * n;
  std::vector<std::vector<int64_t>> ids(batch);
  for (int b = 0; b < batch; ++b) ids[b] = DistinctIds(n, 40 + b, space - 1);
  const std::vector<int64_t> spaces(batch, space);

  local::BatchNetwork scalar_net(tree, ids[0], batch);
  auto scalar = ColeVishkin3ColorBatch(scalar_net, parent, ids, spaces);
  double scalar_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    scalar = ColeVishkin3ColorBatch(scalar_net, parent, ids, spaces);
    scalar_s = std::min(scalar_s, Seconds(t0));
  }

  local::bitplane::BitplaneCvBatch runner(tree, parent);
  auto planes = runner.Run(ids, spaces);
  double planes_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    planes = runner.Run(ids, spaces);
    planes_s = std::min(planes_s, Seconds(t0));
  }

  bool identical = true;
  for (int b = 0; b < batch; ++b) identical &= Identical(scalar[b], planes[b]);
  const double speedup = scalar_s / planes_s;
  const bool acceptance = n >= kAcceptanceN;

  json.BeginRecord();
  json.Field("source", "bench_batch");
  json.Field("experiment", "bitplane_cv_batch");
  json.Field("family", "uniform-random");
  json.Field("n", n);
  json.Field("edges", tree.NumEdges());
  json.Field("batch", batch);
  json.Field("scalar_seconds", scalar_s);
  json.Field("bitplane_seconds", planes_s);
  json.Field("speedup", speedup);
  json.Field("bitplane_speedup", speedup);
  json.Field("transcripts_identical", identical);
  json.Field("acceptance", acceptance);

  std::cout << "  identical=" << (identical ? "yes" : "NO (BUG)")
            << "  scalar: " << scalar_s << " s   bitplane: " << planes_s
            << " s   throughput: " << speedup << "x\n";
  return identical;
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  // --n=<nodes> (default 2^20), --ks=<comma list> (overrides the default
  // pair of sweeps with a single one), --reps=<best-of> (default 3).
  int n = 1 << 20;
  int reps = 3;
  std::vector<int> ks;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = std::atoi(arg.c_str() + 4);
      if (n < 2) {
        std::cerr << "bench_batch: --n must be an integer >= 2\n";
        return 1;
      }
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--ks=", 0) == 0) {
      ks.clear();
      std::stringstream ss(arg.substr(5));
      std::string item;
      while (std::getline(ss, item, ',')) ks.push_back(std::atoi(item.c_str()));
      if (ks.empty()) {
        std::cerr << "bench_batch: --ks needs a comma-separated k list\n";
        return 1;
      }
      for (int k : ks) {
        if (k < 2) {
          std::cerr << "bench_batch: every k must be >= 2\n";
          return 1;
        }
      }
    } else {
      std::cerr << "bench_batch: unknown flag " << arg << "\n";
      return 1;
    }
  }
  treelocal::Graph tree = treelocal::UniformRandomTree(n, 31);
  auto ids = treelocal::DefaultIds(n, 32);
  treelocal::bench::JsonWriter json;
  bool ok = true;
  if (!ks.empty()) {
    ok = treelocal::RunBatchAcceptance(tree, ids, ks, reps, json);
  } else {
    // Default: the classic k-ablation list (B = 8) plus the fine-grained
    // grid (B = 32) that resolves the optimum near g(n) and gives the batch
    // engine its widest amortization.
    std::vector<int> classic = {2, 3, 4, 6, 8, 12, 16, 24};
    std::vector<int> fine;
    for (int k = 2; k <= 33; ++k) fine.push_back(k);
    ok &= treelocal::RunBatchAcceptance(tree, ids, classic, reps, json);
    ok &= treelocal::RunBatchAcceptance(tree, ids, fine, reps, json);
    ok &= treelocal::RunDedupAcceptance(tree, ids, reps, json);
  }
  ok &= treelocal::RunBitplaneAcceptance(n, reps, json);
  json.MergeAs("bench_batch", "BENCH_engine.json");
  std::cout << "  wrote BENCH_engine.json\n";
  return ok ? 0 : 1;
}
