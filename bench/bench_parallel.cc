// Parallel-engine acceptance driver: T-sweep scaling curves of the sharded
// round pass, gated on transcript identity.
//
// Three measurements, all on uniform-random-tree rake-compress (the
// bandwidth-bound workload ROADMAP names as the sharding target), merged
// into BENCH_engine.json as source "bench_parallel":
//   * parallel_scaling: ParallelNetwork at each T in --threads vs the serial
//     Network — per-T wall-clock (best of --reps), speedup, and the
//     per-round wall-clock trajectory. Exits non-zero if any T's transcript
//     (outputs, rounds, messages, per-round RoundStats) differs from
//     serial: the determinism contract is the acceptance gate, speedup is
//     reported but never traded against it.
//   * parallel_batch: a k-sweep on ParallelBatchNetwork (instance shards)
//     vs B solo Network runs, same identity gate.
//   * relabel_ablation: Network with NetworkOptions::relabel vs default
//     layout, identity-gated, timing both (the BFS locality satellite).
//
// CI runs this at small n with --threads=4 as the smoke gate; the full-size
// run (n = 2^20 by default) produces the scaling record for ROADMAP.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/local/network.h"
#include "src/local/parallel_network.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool SameTranscript(const RakeCompressResult& a, const RakeCompressResult& b) {
  return a.iteration == b.iteration && a.compressed == b.compressed &&
         a.engine_rounds == b.engine_rounds && a.messages == b.messages &&
         a.round_stats == b.round_stats;
}

// Warmup + best-of-reps on a reusable engine; keeps the result and round
// trajectory of the fastest rep.
template <typename Engine>
double Measure(Engine& engine, int k, int reps, RakeCompressResult& out,
               std::vector<double>& round_seconds) {
  RunRakeCompress(engine, k);  // warmup: faults in the mailboxes
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    RakeCompressResult r = RunRakeCompress(engine, k);
    double s = Seconds(t0);
    if (s < best) {
      best = s;
      out = std::move(r);
      round_seconds = bench::EngineTimingRecorder::Capture(engine);
    }
  }
  return best;
}

bool RunScaling(const Graph& tree, const std::vector<int64_t>& ids, int k,
                int reps, const std::vector<int>& thread_counts,
                bench::JsonWriter& json) {
  const int n = tree.NumNodes();
  std::cout << "Parallel scaling: rake-compress on a " << n
            << "-node uniform tree, k=" << k << "\n";

  local::Network serial(tree, ids);
  bench::EngineTimingRecorder::Arm(serial);
  RakeCompressResult want;
  std::vector<double> serial_rounds;
  const double serial_s = Measure(serial, k, reps, want, serial_rounds);
  std::cout << "  serial: " << serial_s << " s (" << want.engine_rounds
            << " rounds, " << want.messages << " messages)\n";

  bool ok = true;
  for (int threads : thread_counts) {
    local::ParallelNetwork par(tree, ids, threads);
    bench::EngineTimingRecorder::Arm(par);
    RakeCompressResult got;
    std::vector<double> par_rounds;
    const double par_s = Measure(par, k, reps, got, par_rounds);
    const bool identical = SameTranscript(got, want);
    ok &= identical;
    const double speedup = serial_s / par_s;
    std::cout << "  T=" << threads << ": " << par_s << " s  speedup "
              << speedup << "x  identical=" << (identical ? "yes" : "NO (BUG)")
              << "\n";

    json.BeginRecord();
    json.Field("source", "bench_parallel");
    json.Field("experiment", "parallel_scaling");
    json.Field("n", n);
    json.Field("edges", tree.NumEdges());
    json.Field("k", k);
    json.Field("threads", threads);
    json.Field("rounds", got.engine_rounds);
    json.Field("messages", got.messages);
    json.Field("serial_seconds", serial_s);
    json.Field("parallel_seconds", par_s);
    json.Field("speedup", speedup);
    json.Field("transcripts_identical", identical);
    json.Field("round_seconds", par_rounds);
  }

  // The serial trajectory rides along once per (n, k) so the per-T curves
  // have their baseline in the same file.
  std::vector<int64_t> active, sent;
  for (const auto& rs : want.round_stats) {
    active.push_back(rs.active_nodes);
    sent.push_back(rs.messages_sent);
  }
  json.BeginRecord();
  json.Field("source", "bench_parallel");
  json.Field("experiment", "parallel_scaling_serial_baseline");
  json.Field("n", n);
  json.Field("k", k);
  json.Field("rounds", want.engine_rounds);
  json.Field("messages", want.messages);
  json.Field("serial_seconds", serial_s);
  json.Field("round_active_nodes", active);
  json.Field("round_messages", sent);
  json.Field("round_seconds", serial_rounds);
  return ok;
}

bool RunParallelBatch(const Graph& tree, const std::vector<int64_t>& ids,
                      int reps, int threads, bench::JsonWriter& json) {
  const std::vector<int> ks = {2, 3, 4, 8};
  const int B = static_cast<int>(ks.size());
  const int n = tree.NumNodes();
  std::cout << "Parallel batch: k-sweep {2,3,4,8}, instance shards, T="
            << threads << "\n";

  // Solo baselines (one reusable engine, per-k wall-clock summed).
  std::vector<RakeCompressResult> want(B);
  double solo_s = 0;
  {
    local::Network solo(tree, ids);
    for (int b = 0; b < B; ++b) {
      RunRakeCompress(solo, ks[b]);  // warmup
      double best = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        auto t0 = Clock::now();
        RakeCompressResult r = RunRakeCompress(solo, ks[b]);
        double s = Seconds(t0);
        if (s < best) {
          best = s;
          want[b] = std::move(r);
        }
      }
      solo_s += best;
    }
  }

  local::ParallelBatchNetwork batch(tree, ids, B, threads);
  RunRakeCompressBatch(batch, ks);  // warmup
  double batch_s = 1e300;
  std::vector<RakeCompressResult> got;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    std::vector<RakeCompressResult> r = RunRakeCompressBatch(batch, ks);
    double s = Seconds(t0);
    if (s < batch_s) {
      batch_s = s;
      got = std::move(r);
    }
  }

  bool identical = true;
  for (int b = 0; b < B; ++b) identical &= SameTranscript(got[b], want[b]);
  std::cout << "  solo sum: " << solo_s << " s   batch: " << batch_s
            << " s   speedup " << solo_s / batch_s
            << "x  identical=" << (identical ? "yes" : "NO (BUG)") << "\n";

  json.BeginRecord();
  json.Field("source", "bench_parallel");
  json.Field("experiment", "parallel_batch");
  json.Field("n", n);
  json.Field("batch", B);
  json.Field("threads", threads);
  json.Field("solo_sum_seconds", solo_s);
  json.Field("batch_seconds", batch_s);
  json.Field("speedup", solo_s / batch_s);
  json.Field("transcripts_identical", identical);
  return identical;
}

bool RunRelabelAblation(const Graph& tree, const std::vector<int64_t>& ids,
                        int k, int reps, bench::JsonWriter& json) {
  const int n = tree.NumNodes();
  std::cout << "Relabel ablation: BFS mailbox layout vs caller labels\n";

  local::Network plain(tree, ids);
  RakeCompressResult want;
  std::vector<double> unused;
  const double plain_s = Measure(plain, k, reps, want, unused);

  local::NetworkOptions opt;
  opt.relabel = true;
  local::Network relabeled(tree, ids, opt);
  RakeCompressResult got;
  const double relabel_s = Measure(relabeled, k, reps, got, unused);

  const bool identical = SameTranscript(got, want);
  std::cout << "  default: " << plain_s << " s   relabel: " << relabel_s
            << " s   speedup " << plain_s / relabel_s
            << "x  identical=" << (identical ? "yes" : "NO (BUG)") << "\n";

  json.BeginRecord();
  json.Field("source", "bench_parallel");
  json.Field("experiment", "relabel_ablation");
  json.Field("n", n);
  json.Field("k", k);
  json.Field("default_seconds", plain_s);
  json.Field("relabel_seconds", relabel_s);
  json.Field("speedup", plain_s / relabel_s);
  json.Field("transcripts_identical", identical);
  return identical;
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  int n = 1 << 20;
  int reps = 3;
  int k = 2;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intval = [&](size_t prefix) { return std::atoi(arg.c_str() + prefix); };
    if (arg.rfind("--n=", 0) == 0) {
      n = intval(4);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = intval(7);
    } else if (arg.rfind("--k=", 0) == 0) {
      k = intval(4);
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts.clear();
      std::stringstream ss(arg.substr(10));
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        thread_counts.push_back(std::atoi(tok.c_str()));
      }
    } else {
      std::cerr << "bench_parallel: unknown flag " << arg
                << " (flags: --n= --reps= --k= --threads=a,b,c)\n";
      return 1;
    }
  }
  bool threads_valid = !thread_counts.empty();
  for (int t : thread_counts) threads_valid &= t >= 1;
  if (n < 2 || reps < 1 || k < 2 || !threads_valid) {
    std::cerr << "bench_parallel: need n >= 2, reps >= 1, k >= 2 and a "
                 "non-empty --threads list of integers >= 1\n";
    return 1;
  }

  treelocal::Graph tree = treelocal::UniformRandomTree(n, 77);
  auto ids = treelocal::DefaultIds(n, 78);

  treelocal::bench::JsonWriter json;
  bool ok = treelocal::RunScaling(tree, ids, k, reps, thread_counts, json);
  const int batch_threads =
      *std::max_element(thread_counts.begin(), thread_counts.end());
  ok &= treelocal::RunParallelBatch(tree, ids, reps, batch_threads, json);
  ok &= treelocal::RunRelabelAblation(tree, ids, k, reps, json);
  json.MergeAs("bench_parallel", "BENCH_engine.json");
  std::cout << (ok ? "  wrote BENCH_engine.json\n"
                   : "TRANSCRIPT MISMATCH — failing\n");
  return ok ? 0 : 1;
}
