// Experiments E4-E5 (Lemmas 13, 14 + Section 4 structure): the paper's new
// (b,k)-decomposition on bounded-arboricity graphs.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/decomposition.h"
#include "src/core/forest_split.h"
#include "src/local/network.h"
#include "src/graph/generators.h"
#include "src/graph/subgraph.h"
#include "src/graph/algorithms.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

struct Workload {
  std::string name;
  Graph graph;
  int a;
};

void Run() {
  Table table({"graph", "n", "a", "k", "layers", "layerBound(L13)",
               "maxDegE2", "k(L14)", "maxAtypPerNode", "b=2a", "starsOK",
               "rounds"});
  std::vector<Workload> workloads;
  for (int a : {1, 2, 3, 5}) {
    for (int n : {1 << 10, 1 << 12, 1 << 14, 1 << 16}) {
      workloads.push_back(
          {"union-a" + std::to_string(a), ForestUnion(n, a, 7 * a + n), a});
    }
  }
  workloads.push_back({"grid", Grid(128, 128), 2});
  workloads.push_back({"trigrid", TriangulatedGrid(128, 128), 3});
  // Hub-heavy workloads: max degree ~ n with arboricity <= a; these force
  // multiple layers and a nonempty atypical edge set E1.
  for (int a : {2, 3, 5}) {
    for (int n : {1 << 10, 1 << 13}) {
      workloads.push_back(
          {"starunion-a" + std::to_string(a), StarUnion(n, a, 13 * a), a});
      workloads.push_back(
          {"hubbed-a" + std::to_string(a), HubbedForest(n, a, 17 * a), a});
    }
  }

  bench::JsonWriter json;
  for (const Workload& w : workloads) {
    for (int mult : {1, 4}) {
      int k = 5 * w.a * mult;
      auto ids = DefaultIds(w.graph.NumNodes(), 11);
      // Explicit engine so the decomposition's engine trajectory (active
      // counts, message volume, per-round wall-clock) lands in
      // BENCH_engine.json like the other drivers'.
      local::Network net(w.graph, ids);
      bench::EngineTimingRecorder::Arm(net);
      auto result = RunDecomposition(net, w.a, 2 * w.a, k);
      std::vector<double> round_seconds =
          bench::EngineTimingRecorder::Capture(net);

      std::vector<int> typ_deg(w.graph.NumNodes(), 0);
      std::vector<int> atyp_out(w.graph.NumNodes(), 0);
      for (int e = 0; e < w.graph.NumEdges(); ++e) {
        auto [u, v] = w.graph.Endpoints(e);
        if (result.atypical[e]) {
          ++atyp_out[result.LowerEndpoint(w.graph, e, ids)];
        } else {
          ++typ_deg[u];
          ++typ_deg[v];
        }
      }
      int max_typ = *std::max_element(typ_deg.begin(), typ_deg.end());
      int max_atyp = *std::max_element(atyp_out.begin(), atyp_out.end());

      // Star structure check over all F_{i,j}.
      auto split = SplitAtypicalForests(w.graph, ids,
                                        bench::IdSpace(w.graph.NumNodes()),
                                        result, w.a);
      bool stars_ok = true;
      for (const auto& forest : split.stars) {
        for (const auto& star_class : forest) {
          if (star_class.empty()) continue;
          std::vector<char> mask(w.graph.NumEdges(), 0);
          for (int e : star_class) mask[e] = 1;
          Subgraph sub = InduceByEdges(w.graph, mask);
          for (int e = 0; e < sub.graph.NumEdges(); ++e) {
            auto [u, v] = sub.graph.Endpoints(e);
            if (sub.graph.Degree(u) > 1 && sub.graph.Degree(v) > 1) {
              stars_ok = false;
            }
          }
        }
      }

      table.AddRow(
          {w.name, Table::Num(w.graph.NumNodes()), Table::Num(w.a),
           Table::Num(k), Table::Num(result.num_layers),
           Table::Num(DecompositionIterationBound(w.graph.NumNodes(), w.a, k)),
           Table::Num(max_typ), Table::Num(k), Table::Num(max_atyp),
           Table::Num(2 * w.a), stars_ok ? "yes" : "NO",
           Table::Num(result.engine_rounds)});

      // Machine-readable engine trajectory for this decomposition run.
      std::vector<int64_t> active, sent;
      for (const auto& rs : result.round_stats) {
        active.push_back(rs.active_nodes);
        sent.push_back(rs.messages_sent);
      }
      json.BeginRecord();
      json.Field("source", "bench_decomposition");
      json.Field("experiment", "decomposition_trajectory");
      json.Field("graph", w.name);
      json.Field("n", w.graph.NumNodes());
      json.Field("edges", w.graph.NumEdges());
      json.Field("a", w.a);
      json.Field("k", k);
      json.Field("layers", result.num_layers);
      json.Field("rounds", result.engine_rounds);
      json.Field("messages", result.messages);
      json.Field("round_active_nodes", active);
      json.Field("round_messages", sent);
      json.Field("round_seconds", round_seconds);
    }
  }
  table.Print("E4-E5: Algorithm 3 decomposition vs Lemmas 13/14 bounds");
  table.WriteCsv("bench_decomposition");
  table.WriteJson("bench_decomposition");
  json.MergeAs("bench_decomposition", "BENCH_engine.json");
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::Run();
  return 0;
}
