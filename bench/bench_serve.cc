// Experiment E13: daemon throughput where batch = concurrent users. Spins
// up an in-process treelocald server and drives it with a closed loop of
// client threads (each submits, blocks on the result, submits again) over
// one resident tree, cycling a small rake-compress k-sweep. Two daemon
// configurations over the identical workload:
//   * serial:    --max-batch 1 — every request is its own engine pass;
//   * coalesced: --max-batch 16 — the dispatcher sweeps compatible queued
//     requests into one BatchNetwork pass (canonical-k dedup included).
// Every response is identity-gated against a solo-engine run of the same
// (graph, k): digest, engine rounds, and message count must all match, so
// the throughput number can never come from a wrong answer. The process
// exits non-zero on any mismatch, any failed request, or if coalescing
// never actually batched (max_batch stayed 1) — that is what CI gates on.
// Records go to BENCH_engine.json as source "bench_serve".
//
// --negative arms a deterministic mid-round FaultInjector inside the
// daemon's engine passes: at least one request must then fail, the gate
// must trip, and the process must exit non-zero. CI runs this as the
// liveness check for the identity gate itself.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/rake_compress.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/support/fault.h"
#include "src/support/rng.h"

namespace treelocal {
namespace {

using Clock = std::chrono::steady_clock;

struct Expected {
  uint32_t rounds = 0;
  int64_t messages = 0;
  uint64_t digest = 0;
};

struct ConfigResult {
  double seconds = 0;
  uint64_t failures = 0;
  uint64_t mismatches = 0;
  serve::ServerStats stats;
};

// One daemon configuration driven to completion by `clients` closed-loop
// threads issuing `requests` solves each.
ConfigResult RunConfig(const Graph& tree, const std::vector<int>& ks,
                       const std::map<int, Expected>& want, int clients,
                       int requests, int max_batch,
                       support::FaultInjector* fault) {
  serve::Server::Options opt;
  opt.max_batch = max_batch;
  opt.fault = fault;
  serve::Server server(opt);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "bench_serve: server start failed: " << error << "\n";
    std::exit(2);
  }

  ConfigResult out;
  std::atomic<uint64_t> failures{0}, mismatches{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      serve::Client client;
      std::string err;
      if (!client.Connect("127.0.0.1", server.port(), &err)) {
        failures += requests;
        return;
      }
      uint64_t key = 0;
      bool fresh = false;
      if (!client.RegisterGraph(tree, {}, &key, &fresh, &err)) {
        failures += requests;
        return;
      }
      for (int i = 0; i < requests; ++i) {
        serve::SolveSpec spec;
        spec.kind = serve::SolveKind::kRakeCompress;
        spec.k = ks[(t + i) % ks.size()];
        serve::SolveResult result;
        if (!client.SolveAndWait(key, spec, &result, &err)) {
          ++failures;
          continue;
        }
        const Expected& e = want.at(spec.k);
        if (result.digest != e.digest || result.engine_rounds != e.rounds ||
            result.messages != e.messages) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  out.seconds = bench::SecondsSince(t0);

  serve::Client probe;
  if (probe.Connect("127.0.0.1", server.port(), &error)) {
    probe.Stats(&out.stats, &error);
  }
  server.Stop();
  out.failures = failures.load();
  out.mismatches = mismatches.load();
  return out;
}

}  // namespace
}  // namespace treelocal

int main(int argc, char** argv) {
  using namespace treelocal;

  int clients = 8;
  int requests = 12;
  int n = 1 << 14;
  uint64_t seed = 42;
  bool negative = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](int& idx) -> std::string {
      if (idx + 1 >= argc) {
        std::cerr << "bench_serve: missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++idx];
    };
    if (a == "--clients") {
      clients = std::atoi(need(i).c_str());
    } else if (a == "--requests") {
      requests = std::atoi(need(i).c_str());
    } else if (a == "--n") {
      n = std::atoi(need(i).c_str());
    } else if (a == "--seed") {
      seed = std::strtoull(need(i).c_str(), nullptr, 0);
    } else if (a == "--negative") {
      negative = true;
    } else {
      std::cerr << "usage: bench_serve [--clients C] [--requests R] [--n N] "
                   "[--seed S] [--negative]\n";
      return 2;
    }
  }

  const Graph tree = UniformRandomTree(n, seed);
  std::vector<int64_t> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  const std::vector<int> ks = {2, 3, 4, 8};

  // The identity gate's ground truth: solo engine runs of every k in the
  // sweep (the daemon must reproduce these bit for bit, batched or not).
  std::map<int, Expected> want;
  for (int k : ks) {
    RakeCompressResult r = RunRakeCompress(tree, ids, k);
    uint64_t d = support::kDigestSeed;
    for (const auto& rs : r.round_stats) {
      d = support::ChainDigest(d, rs.active_nodes, rs.messages_sent, 0);
    }
    want[k] = {(uint32_t)r.engine_rounds, r.messages, d};
  }

  std::cout << "Daemon closed-loop throughput: " << clients << " clients x "
            << requests << " requests, n=" << n << ", k-sweep {2,3,4,8}\n";

  if (negative) {
    // Liveness check for the gate: a mid-round engine fault must surface as
    // a failed request and a non-zero exit.
    support::FaultInjector fault = support::FaultInjector::ThrowAtVisit(500);
    ConfigResult r = RunConfig(tree, ks, want, clients, requests,
                               /*max_batch=*/16, &fault);
    std::cout << "  negative control: failures=" << r.failures
              << " mismatches=" << r.mismatches
              << " fault_fired=" << (fault.fired() ? 1 : 0) << "\n";
    if (r.failures == 0) {
      std::cerr << "bench_serve: NEGATIVE CONTROL DEAD — injected fault "
                   "produced no failed request\n";
      return 0;  // CI inverts this exit: 0 here means the gate is broken.
    }
    std::cerr << "bench_serve: negative control tripped as intended\n";
    return 1;
  }

  ConfigResult serial = RunConfig(tree, ks, want, clients, requests,
                                  /*max_batch=*/1, nullptr);
  ConfigResult coalesced = RunConfig(tree, ks, want, clients, requests,
                                     /*max_batch=*/16, nullptr);

  const uint64_t total = (uint64_t)clients * requests;
  const double serial_rps = total / serial.seconds;
  const double coalesced_rps = total / coalesced.seconds;
  const double speedup = serial.seconds / coalesced.seconds;
  const bool identical = serial.failures == 0 && serial.mismatches == 0 &&
                         coalesced.failures == 0 && coalesced.mismatches == 0;
  const bool batched = coalesced.stats.max_batch >= 2;

  std::cout << "  serial    (max-batch 1):  " << serial.seconds << " s  "
            << serial_rps << " req/s  batches=" << serial.stats.batches
            << "\n  coalesced (max-batch 16): " << coalesced.seconds << " s  "
            << coalesced_rps << " req/s  batches=" << coalesced.stats.batches
            << " max_batch=" << coalesced.stats.max_batch << "\n  speedup: "
            << speedup << "x  identity: " << (identical ? "yes" : "NO (BUG)")
            << "\n";

  bench::JsonWriter json;
  json.BeginRecord();
  json.Field("source", "bench_serve");
  json.Field("experiment", "daemon_closed_loop");
  json.Field("family", "uniform-random");
  json.Field("n", n);
  json.Field("clients", clients);
  json.Field("requests_per_client", requests);
  json.Field("ks", ks);
  json.Field("serial_seconds", serial.seconds);
  json.Field("coalesced_seconds", coalesced.seconds);
  json.Field("serial_rps", serial_rps);
  json.Field("coalesced_rps", coalesced_rps);
  json.Field("speedup", speedup);
  // Named so tools/check_bench_regression.py applies its identity gate.
  json.Field("transcripts_identical", identical);
  json.Field("serial_batches", (int64_t)serial.stats.batches);
  json.Field("coalesced_batches", (int64_t)coalesced.stats.batches);
  json.Field("coalesced_max_batch", (int64_t)coalesced.stats.max_batch);
  json.MergeAs("bench_serve", "BENCH_engine.json");
  std::cout << "  wrote BENCH_engine.json\n";

  if (!identical) {
    std::cerr << "bench_serve: IDENTITY GATE FAILED\n";
    return 1;
  }
  if (!batched) {
    std::cerr << "bench_serve: coalescing never batched (max_batch stayed "
              << coalesced.stats.max_batch << ")\n";
    return 1;
  }
  if (speedup <= 1.0) {
    std::cerr << "bench_serve: coalesced slower than serial (" << speedup
              << "x)\n";
    return 1;
  }
  return 0;
}
