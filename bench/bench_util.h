#ifndef TREELOCAL_BENCH_BENCH_UTIL_H_
#define TREELOCAL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "src/graph/labeling.h"
#include "src/local/network.h"
#include "src/support/json.h"

namespace treelocal::bench {

// Wall-clock seconds elapsed since `t0` (steady clock; every driver times
// the same way).
inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Resident-set sampling from /proc/self/status, for the out-of-core graph
// benches' peak-RSS accounting (bench_graph_backend, graph_convert). Returns
// 0 on platforms without procfs — consumers must treat 0 as "not measured",
// never as "zero memory".
inline int64_t ReadProcStatusKb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  const size_t klen = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, klen, key) == 0) {
      return std::strtoll(line.c_str() + klen, nullptr, 10) * 1024;
    }
  }
  return 0;
}
inline int64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS:"); }
// High-water mark since process start (or the last VmHWM reset).
inline int64_t PeakRssBytes() { return ReadProcStatusKb("VmHWM:"); }

// The identity predicate behind every engine-vs-legacy bench gate: both
// half-edge labelings of `g` must match slot for slot.
inline bool SameLabeling(const Graph& g, const HalfEdgeLabeling& a,
                         const HalfEdgeLabeling& b) {
  for (int e = 0; e < g.NumEdges(); ++e) {
    if (a.GetSlot(e, 0) != b.GetSlot(e, 0)) return false;
    if (a.GetSlot(e, 1) != b.GetSlot(e, 1)) return false;
  }
  return true;
}

// Polynomial ID space n^3, clamped to 2^62: the bare n^3 overflows int64_t
// (signed UB) at n >= 2^21 — exactly the million-node sizes the engine
// benches run. The clamp is semantically safe: any value >= the actual ID
// upper bound works, and DefaultIds saturates its own space at <= 2^62, so
// ids stay strictly below IdSpace(n); 2^62 also leaves headroom for the
// id_space + 1 arithmetic downstream.
inline int64_t IdSpace(int n) {
  constexpr int64_t kClamp = int64_t{1} << 62;
  const auto nn = static_cast<__int128>(std::max(n, 2));
  const __int128 cube = nn * nn * nn;
  return cube > kClamp ? kClamp : static_cast<int64_t>(cube);
}

// Geometric size series 2^lo .. 2^hi. Exponents are validated up front:
// 1 << e is UB (and overflows int) for e >= 31, so out-of-range requests
// fail loudly instead of returning shift garbage.
inline std::vector<int> PowersOfTwo(int lo, int hi) {
  if (lo < 0 || hi > 30) {
    throw std::invalid_argument(
        "PowersOfTwo exponents must satisfy 0 <= lo and hi <= 30");
  }
  std::vector<int> out;
  for (int e = lo; e <= hi; ++e) {
    out.push_back(static_cast<int>(int64_t{1} << e));
  }
  return out;
}

// Uniform opt-in per-round wall-clock timing across the engine family, so
// every driver records round trajectories identically instead of probing
// `requires { engine.round_seconds(); }` ad hoc. Engines exposing the
// timing surface (Network, ParallelNetwork) are armed and read back;
// engines without it (ReferenceNetwork, BatchNetwork) arm to a no-op and
// capture an empty trajectory — callers emit what they got and the JSON
// consumers treat an empty round_seconds as "engine does not time rounds".
class EngineTimingRecorder {
 public:
  template <typename Engine>
  static void Arm(Engine& engine) {
    if constexpr (requires { engine.set_record_round_times(true); }) {
      engine.set_record_round_times(true);
    }
  }

  template <typename Engine>
  static std::vector<double> Capture(const Engine& engine) {
    if constexpr (requires { engine.round_seconds(); }) {
      return engine.round_seconds();
    } else {
      return {};
    }
  }
};

class JsonWriter;

// Emits an engine phase's round trajectory as three records fields:
// <prefix>_round_active_nodes / _round_messages / _round_seconds (the
// suffixes tools/check_bench_regression.py keys its shape bounds on).
// Declared after JsonWriter below.
inline void EmitTrajectory(JsonWriter& json, const std::string& prefix,
                           const std::vector<local::RoundStats>& stats,
                           const std::vector<double>& seconds);

// Minimal JSON results writer: a flat array of records, each a flat object
// (scalars plus numeric arrays for per-round trajectories). The perf
// trajectory files (BENCH_engine.json, BENCH_*.json) are built with this so
// downstream tooling never scrapes the pretty-printed tables. Emission
// policy (escaping, non-finite handling) is shared with Table::WriteJson
// via src/support/json.h.
class JsonWriter {
 public:
  void BeginRecord() {
    records_.emplace_back();
    first_field_ = true;
  }

  void Field(const std::string& key, int64_t v) {
    Raw(key, std::to_string(v));
  }
  void Field(const std::string& key, int v) { Field(key, int64_t{v}); }
  void Field(const std::string& key, bool v) { Raw(key, v ? "true" : "false"); }
  void Field(const std::string& key, double v) {
    Raw(key, json::Number(v));  // non-finite -> null, never bare inf/nan
  }
  void Field(const std::string& key, const std::string& v) {
    Raw(key, json::Quote(v));
  }
  void Field(const std::string& key, const char* v) {
    Raw(key, json::Quote(v));
  }
  template <typename T>
  void Field(const std::string& key, const std::vector<T>& values) {
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ",";
      if constexpr (std::is_floating_point_v<T>) {
        os << json::Number(static_cast<double>(values[i]));
      } else {
        os << static_cast<int64_t>(values[i]);
      }
    }
    os << "]";
    Raw(key, os.str());
  }

  // Merges this writer's records into an existing JsonWriter-produced array
  // (or creates the file), first dropping any existing records whose
  // "source" field equals `source`. Several bench binaries can contribute
  // to one trajectory file (e.g. BENCH_engine.json) and a rerun replaces a
  // binary's own records instead of duplicating them or clobbering others'.
  void MergeAs(const std::string& source, const std::string& path) const {
    const std::string full = json::WithJsonExt(path);
    const std::string tag = json::Quote("source") + ": " + json::Quote(source);
    std::vector<std::string> existing;
    {
      std::ifstream in(full);
      if (in) {
        std::ostringstream all;
        all << in.rdbuf();
        for (std::string& rec : SplitRecords(all.str())) {
          if (rec.find(tag) == std::string::npos) {
            existing.push_back(std::move(rec));
          }
        }
      }
    }
    existing.insert(existing.end(), records_.begin(), records_.end());
    std::ofstream out(full);
    json::RenderRecordArray(out, existing);
  }

 private:
  void Raw(const std::string& key, const std::string& rendered) {
    std::string& rec = records_.back();
    if (!first_field_) rec += ", ";
    first_field_ = false;
    rec += json::Quote(key) + ": " + rendered;
  }

  // Recovers the per-record bodies from a file this writer produced: one
  // record per "  {...}" line (json::RenderRecordArray's fixed layout).
  static std::vector<std::string> SplitRecords(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      size_t open = line.find('{');
      if (open == std::string::npos) continue;
      size_t close = line.rfind('}');
      if (close == std::string::npos || close < open) continue;
      out.push_back(line.substr(open + 1, close - open - 1));
    }
    return out;
  }

  std::vector<std::string> records_;
  bool first_field_ = true;
};

inline void EmitTrajectory(JsonWriter& json, const std::string& prefix,
                           const std::vector<local::RoundStats>& stats,
                           const std::vector<double>& seconds) {
  std::vector<int64_t> active, sent, visits, decisions;
  active.reserve(stats.size());
  sent.reserve(stats.size());
  visits.reserve(stats.size());
  decisions.reserve(stats.size());
  for (const auto& rs : stats) {
    active.push_back(rs.active_nodes);
    sent.push_back(rs.messages_sent);
    visits.push_back(rs.visits);
    decisions.push_back(rs.decisions);
  }
  json.Field(prefix + "_round_active_nodes", active);
  json.Field(prefix + "_round_messages", sent);
  json.Field(prefix + "_round_visits", visits);
  json.Field(prefix + "_round_decisions", decisions);
  json.Field(prefix + "_round_seconds", seconds);
}

// Scalar totals over a run's round stats, for the drivers' per-record
// visit/decision accounting (tools/check_bench_regression.py bounds the
// wake scheduler's visit overhead with these: visits should approach
// decisions + wakes, not the always-visit sum of live counts).
inline int64_t TotalVisits(const std::vector<local::RoundStats>& stats) {
  int64_t total = 0;
  for (const auto& rs : stats) total += rs.visits;
  return total;
}
inline int64_t TotalDecisions(const std::vector<local::RoundStats>& stats) {
  int64_t total = 0;
  for (const auto& rs : stats) total += rs.decisions;
  return total;
}

}  // namespace treelocal::bench

#endif  // TREELOCAL_BENCH_BENCH_UTIL_H_
