#ifndef TREELOCAL_BENCH_BENCH_UTIL_H_
#define TREELOCAL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace treelocal::bench {

inline int64_t IdSpace(int n) {
  int64_t nn = std::max(n, 2);
  return nn * nn * nn;
}

// Geometric size series 2^lo .. 2^hi.
inline std::vector<int> PowersOfTwo(int lo, int hi) {
  std::vector<int> out;
  for (int e = lo; e <= hi; ++e) out.push_back(1 << e);
  return out;
}

}  // namespace treelocal::bench

#endif  // TREELOCAL_BENCH_BENCH_UTIL_H_
