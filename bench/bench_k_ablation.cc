// Experiment E10 (ablation): the transformation's only tunable is k.
// Sweep k around g(n) and verify the total round count is minimized near
// the paper's choice k = g(n): smaller k inflates the decomposition and
// gather terms (log_k n), larger k inflates the base term (f(k)).
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/baseline.h"
#include "src/core/complexity.h"
#include "src/core/decomposition.h"
#include "src/core/transform_edge.h"
#include "src/core/transform_node.h"
#include "src/graph/generators.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/support/rng.h"
#include "src/support/table.h"

namespace treelocal {
namespace {

void RunThm12Ablation() {
  const int n = 1 << 16;
  Graph tree = UniformRandomTree(n, 11);
  auto ids = DefaultIds(n, 12);
  MisProblem mis;
  int k_star = ChooseK(n, QuadraticF());
  Table table({"k", "k/g(n)", "rounds", "decomp", "base", "gather", "valid"});
  // The whole k-sweep runs its decomposition phase as ONE batched engine
  // pass over the shared tree, with shared-transcript dedup: the sweep's
  // tail entries at or above the tree's max degree collapse to a single
  // engine instance (results are bit-identical to per-k solo runs; see
  // SolveNodeProblemOnTreeBatch / RunRakeCompressBatchDeduped).
  const std::vector<int> ks = {2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128};
  auto results =
      SolveNodeProblemOnTreeBatch(mis, tree, ids, bench::IdSpace(n), ks);
  for (const auto& result : results) {
    table.AddRow({Table::Num(result.k),
                  Table::Num(double(result.k) / k_star, 2),
                  Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_gather),
                  result.valid ? "yes" : "NO"});
  }
  std::cout << "\n(g(n) for f=Delta^2 at n=" << n << " gives k=" << k_star
            << ")\n";
  table.Print("E10a: k-ablation, Theorem 12 pipeline (MIS, uniform tree)");
  table.WriteCsv("bench_k_ablation_thm12");
  table.WriteJson("bench_k_ablation_thm12");
}

void RunThm15Ablation() {
  const int n = 1 << 16;
  Graph tree = UniformRandomTree(n, 13);
  auto ids = DefaultIds(n, 14);
  MatchingProblem mm;
  int k_star = std::max(5, ChooseK(n, QuadraticF()));
  Table table({"k", "k/g(n)", "rounds", "decomp", "base", "split", "gather",
               "valid"});
  for (int k : {5, 6, 8, 12, 16, 24, 32, 64, 128}) {
    auto result = SolveEdgeProblemBoundedArboricity(mm, tree, ids,
                                                    bench::IdSpace(n), 1, k);
    table.AddRow({Table::Num(k), Table::Num(double(k) / k_star, 2),
                  Table::Num(result.rounds_total),
                  Table::Num(result.rounds_decomposition),
                  Table::Num(result.rounds_base),
                  Table::Num(result.rounds_split),
                  Table::Num(result.rounds_gather),
                  result.valid ? "yes" : "NO"});
  }
  std::cout << "\n(g(n) for f=Delta^2 at n=" << n << " gives k=" << k_star
            << ")\n";
  table.Print(
      "E10b: k-ablation, Theorem 15 pipeline (matching, uniform tree)");
  table.WriteCsv("bench_k_ablation_thm15");
  table.WriteJson("bench_k_ablation_thm15");
}

void RunBAblation() {
  // The paper analyzes Algorithm 3 with b = 2a (Lemma 13's proof needs
  // b/a - 1 >= 1). Sweep b: smaller b (= a+1) still terminates but slower;
  // larger b admits more atypical edges per node (more forests to split).
  const int n = 1 << 13;
  const int a = 3;
  Graph g = StarUnion(n, a, 15);
  auto ids = DefaultIds(g.NumNodes(), 16);
  Table table({"b", "b/a", "layers", "bound(b=2a)", "atypicalEdges",
               "maxAtypPerNode", "rounds"});
  for (int b : {a + 1, 2 * a - 1, 2 * a, 3 * a, 4 * a, 8 * a}) {
    auto result = RunDecomposition(g, ids, a, b, 5 * a);
    int64_t atypical = 0;
    std::vector<int> per_node(g.NumNodes(), 0);
    for (int e = 0; e < g.NumEdges(); ++e) {
      if (result.atypical[e]) {
        ++atypical;
        ++per_node[result.LowerEndpoint(g, e, ids)];
      }
    }
    int max_per_node = 0;
    for (int c : per_node) max_per_node = std::max(max_per_node, c);
    table.AddRow({Table::Num(b), Table::Num(double(b) / a, 2),
                  Table::Num(result.num_layers),
                  Table::Num(DecompositionIterationBound(n, a, 5 * a)),
                  Table::Num(atypical), Table::Num(max_per_node),
                  Table::Num(result.engine_rounds)});
  }
  table.Print(
      "E10c: b-ablation, Algorithm 3 on a union of 3 stars (paper: b = 2a)");
  table.WriteCsv("bench_b_ablation");
  table.WriteJson("bench_b_ablation");
}

}  // namespace
}  // namespace treelocal

int main() {
  treelocal::RunThm12Ablation();
  treelocal::RunThm15Ablation();
  treelocal::RunBAblation();
  return 0;
}
